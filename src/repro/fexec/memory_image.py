"""Global-memory image for functional execution.

Addresses throughout the reproduction are **4-byte word indices** (not
byte addresses); a DRAM/L2 *sector* is 32 bytes, i.e. 8 consecutive
words.  Values are stored as float64, which represents both float data
and integer indices (exact up to 2^53) without a tag bit per word.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.errors import ExecutionError

WORDS_PER_SECTOR = 8  # 32-byte sectors of 4-byte words


class MemoryImage:
    """A flat global-memory address space with a bump allocator.

    Workloads allocate named arrays with :meth:`alloc`, write initial
    contents, and hand the image to the executor.  The image can be
    cloned so baseline and WASP runs of the same kernel start from
    identical state.
    """

    def __init__(self, size_words: int = 1 << 22) -> None:
        if size_words <= 0:
            raise ExecutionError("memory image must have positive size")
        self._words = np.zeros(size_words, dtype=np.float64)
        self._next_free = 64  # keep address 0 unused to catch bugs
        self._arrays: dict[str, tuple[int, int]] = {}

    @property
    def size_words(self) -> int:
        return len(self._words)

    # -- allocation ---------------------------------------------------------

    def alloc(self, name: str, length: int, align: int = WORDS_PER_SECTOR) -> int:
        """Reserve ``length`` words under ``name``; returns base address."""
        if name in self._arrays:
            raise ExecutionError(f"array {name!r} already allocated")
        if length <= 0:
            raise ExecutionError(f"array {name!r} must have positive length")
        base = -(-self._next_free // align) * align
        if base + length > len(self._words):
            raise ExecutionError(
                f"out of memory allocating {name!r} ({length} words)"
            )
        self._arrays[name] = (base, length)
        self._next_free = base + length
        return base

    def base(self, name: str) -> int:
        """Base address of a previously allocated array."""
        return self._arrays[name][0]

    def extent(self, name: str) -> tuple[int, int]:
        """(base, length) of a previously allocated array."""
        return self._arrays[name]

    def array_names(self) -> list[str]:
        return sorted(self._arrays)

    # -- typed array views ----------------------------------------------

    def write_array(self, name: str, values: np.ndarray) -> None:
        """Store ``values`` (cast to float64) into the named array."""
        base, length = self._arrays[name]
        data = np.asarray(values, dtype=np.float64).ravel()
        if len(data) > length:
            raise ExecutionError(
                f"writing {len(data)} words into {name!r} of length {length}"
            )
        self._words[base : base + len(data)] = data

    def read_array(self, name: str) -> np.ndarray:
        """A copy of the named array's contents."""
        base, length = self._arrays[name]
        return self._words[base : base + length].copy()

    # -- word access --------------------------------------------------------

    def load(self, addresses: np.ndarray) -> np.ndarray:
        """Vector load; ``addresses`` are word indices."""
        idx = np.asarray(addresses, dtype=np.int64)
        if idx.min(initial=0) < 0 or idx.max(initial=0) >= len(self._words):
            raise ExecutionError(
                f"global load out of bounds: {idx.min()}..{idx.max()}"
            )
        return self._words[idx]

    def store(self, addresses: np.ndarray, values: np.ndarray) -> None:
        """Vector store; later lanes win on address collisions."""
        idx = np.asarray(addresses, dtype=np.int64)
        if idx.min(initial=0) < 0 or idx.max(initial=0) >= len(self._words):
            raise ExecutionError(
                f"global store out of bounds: {idx.min()}..{idx.max()}"
            )
        self._words[idx] = np.asarray(values, dtype=np.float64)

    # -- misc -----------------------------------------------------------

    def clone(self) -> "MemoryImage":
        copy = MemoryImage.__new__(MemoryImage)
        copy._words = self._words.copy()
        copy._next_free = self._next_free
        copy._arrays = dict(self._arrays)
        return copy

    def snapshot(self) -> np.ndarray:
        """Copy of the full word array (for equivalence checks)."""
        return self._words.copy()

    def content_digest(self) -> str:
        """SHA-256 over the allocated prefix and the allocation table.

        Two images with identical allocations and identical initial
        contents hash identically regardless of total capacity, so the
        digest can serve as the memory-image component of a
        content-addressed trace-cache key.
        """
        h = hashlib.sha256()
        for name in sorted(self._arrays):
            base, length = self._arrays[name]
            h.update(f"{name}:{base}:{length};".encode("utf-8"))
        h.update(f"used={self._next_free};".encode("utf-8"))
        h.update(np.ascontiguousarray(self._words[: self._next_free]).tobytes())
        return h.hexdigest()


def sectors_of(addresses: np.ndarray) -> tuple[int, ...]:
    """Distinct 32-byte sector ids touched by a vector of word addresses.

    This is the coalescing model: a warp-wide access costs one memory
    transaction per distinct sector.
    """
    idx = np.asarray(addresses, dtype=np.int64) // WORDS_PER_SECTOR
    return tuple(np.unique(idx).tolist())
