"""Functional execution substrate.

This package interprets kernels written in :mod:`repro.isa` at warp
granularity (each register holds a warp-wide vector of lane values) and
produces two artifacts:

* the architectural side effects (final global-memory contents), used by
  the functional-equivalence tests between original and warp-specialized
  programs, and
* per-warp **dynamic instruction traces** with resolved control flow,
  coalesced memory sectors, queue pushes/pops and barrier events — the
  input consumed by the timing simulator in :mod:`repro.sim`.

Execution is cooperative: warps are stepped round-robin and block on
queue-empty/full and barrier conditions, which both defines the reference
semantics for WASP pipelines and detects deadlocks in compiler output.
"""

from repro.fexec.memory_image import MemoryImage
from repro.fexec.launch import LaunchConfig
from repro.fexec.trace import DynamicInstr, KernelTrace, WarpTrace
from repro.fexec.machine import FunctionalMachine, run_kernel

__all__ = [
    "DynamicInstr",
    "FunctionalMachine",
    "KernelTrace",
    "LaunchConfig",
    "MemoryImage",
    "WarpTrace",
    "run_kernel",
]
