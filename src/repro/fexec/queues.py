"""Functional named-queue state.

Functional queues follow Kahn-network semantics: FIFO, blocking pop,
non-blocking push (capacity is a *timing* property enforced by the
simulator, not a functional one — a warp-specialized program computes the
same values for any positive capacity).
"""

from __future__ import annotations

from collections import deque

import numpy as np


class FunctionalQueue:
    """One named queue carrying warp-wide value vectors."""

    def __init__(self, queue_id: int) -> None:
        self.queue_id = queue_id
        self._entries: deque[np.ndarray] = deque()
        self.total_pushed = 0
        self.total_popped = 0

    def push(self, value: np.ndarray) -> None:
        self._entries.append(np.asarray(value, dtype=np.float64))
        self.total_pushed += 1

    def can_pop(self) -> bool:
        return bool(self._entries)

    def pop(self) -> np.ndarray:
        self.total_popped += 1
        return self._entries.popleft()

    def __len__(self) -> int:
        return len(self._entries)
