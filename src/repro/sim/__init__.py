"""Cycle-level GPU timing simulator.

Models one streaming multiprocessor (SM) of an A100-class GPU with four
processing blocks, greedy-then-oldest warp scheduling, register
scoreboards, shared memory, an L1 sector cache, and per-SM shares of L2
and DRAM bandwidth (paper Table III).  WASP hardware — register-file
queues, pipeline-aware mapping/scheduling, per-stage register
allocation, and the WASP-TMA offload engine — is enabled through
:class:`~repro.sim.config.WaspFeatures`.

The simulator replays dynamic traces produced by :mod:`repro.fexec`,
re-enforcing register, queue and barrier dependences at cycle
granularity with event skipping for speed.
"""

from repro.sim.config import GPUConfig, SchedulingPolicy, WaspFeatures
from repro.sim.gpu import SimResult, simulate_kernel, simulate_program

__all__ = [
    "GPUConfig",
    "SchedulingPolicy",
    "SimResult",
    "WaspFeatures",
    "simulate_kernel",
    "simulate_program",
]
