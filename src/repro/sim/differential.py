"""Reference-vs-event SM core differential: the exactness contract.

The event-skipping core (:mod:`repro.sim.sm_event`) claims *bit
identity* with the reference loop, not statistical agreement.  This
module is the claim's enforcement: it runs both cores over the same
traces and compares every observable — cycle count, issue totals by
category and stage, queue-overhead instructions, thread blocks
completed, the full ``(stage, cause) -> cycles`` stall mix, the stall
*span* count (a core that merged or split attribution intervals could
still match the totals), active warp-cycles, the per-bucket activity
timeline, the memory system's service counters (L1/L2/DRAM hits,
sectors, SMEM words) and the TMA engine's vector/job counts.

Consumers:

* ``tests/test_core_differential.py`` — tier-1 coverage on small
  programs and a registry sample.
* ``repro corediff`` (the CLI) — the full fuzz corpus plus the kernel
  registry; CI's ``core-differential`` job gates on it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import CompilerError, ReproError, ResourceError
from repro.fexec.trace import KernelTrace
from repro.sim.config import GPUConfig, baseline_a100, wasp_gpu
from repro.sim.gpu import make_simulator

__all__ = [
    "CoreDiff",
    "diff_registry_kernel",
    "diff_spec",
    "diff_traces",
    "differential_gpus",
]


@dataclass
class CoreDiff:
    """Outcome of one reference-vs-event comparison.

    Beyond the pass/fail verdict, each diff carries per-core wall
    time and issue/event counts so ``repro corediff`` doubles as a
    per-kernel performance comparison of the two cores.
    """

    label: str
    ref_cycles: float = 0.0
    event_cycles: float = 0.0
    ref_wall_s: float = 0.0
    event_wall_s: float = 0.0
    ref_issued: int = 0
    event_issued: int = 0
    #: Event-core bookkeeping volume: heap pops + list wakes (0 for
    #: runs that failed before completing).
    event_events: int = 0
    mismatches: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    @property
    def speedup(self) -> float:
        """Reference wall time over event wall time (>1: event wins)."""
        if self.event_wall_s <= 0:
            return 0.0
        return self.ref_wall_s / self.event_wall_s

    def to_json(self) -> dict[str, object]:
        return {
            "label": self.label,
            "ok": self.ok,
            "ref_cycles": self.ref_cycles,
            "event_cycles": self.event_cycles,
            "ref_wall_s": round(self.ref_wall_s, 6),
            "event_wall_s": round(self.event_wall_s, 6),
            "speedup": round(self.speedup, 3),
            "ref_issued": self.ref_issued,
            "event_issued": self.event_issued,
            "event_events": self.event_events,
            "mismatches": list(self.mismatches),
        }


def differential_gpus(config: GPUConfig | None = None) -> list[GPUConfig]:
    """A GPU matrix that exercises every event class.

    Baseline (SMEM queues, GTO), the full WASP GPU (RFQ queues,
    pipeline scheduling, TMA), a queue-starved WASP GPU (constant
    QUEUE_FULL/QUEUE_EMPTY blocking -> the wake registries), and a
    bandwidth-starved one (long memory waits -> the wakeup heap).
    """
    if config is not None:
        return [config]
    return [
        baseline_a100(),
        wasp_gpu(),
        wasp_gpu(rfq_size=2),
        wasp_gpu().scale_bandwidth(0.25),
    ]


def diff_traces(
    traces: list[KernelTrace],
    config: GPUConfig,
    label: str,
) -> CoreDiff:
    """Run both cores over ``traces`` and compare every observable."""
    diff = CoreDiff(label=label)

    def one(core: str):
        start = time.perf_counter()
        try:
            sim = make_simulator(config, traces, core=core)
            stats = sim.run()
        except ReproError as exc:
            outcome = (type(exc).__name__, str(exc)[:200])
            return None, outcome, time.perf_counter() - start
        return sim, stats, time.perf_counter() - start

    ref_sim, ref, diff.ref_wall_s = one("reference")
    event_sim, event, diff.event_wall_s = one("event")

    if ref_sim is None or event_sim is None:
        # Both must fail identically (same error, same cycle in the
        # message) — deadlock parity is part of the contract.
        if ref != event:
            diff.mismatches.append(
                f"{label}: outcome: reference={ref!r} event={event!r}"
            )
        return diff

    diff.ref_cycles = ref.cycles
    diff.event_cycles = event.cycles
    diff.ref_issued = ref.issued_total
    diff.event_issued = event.issued_total
    diff.event_events = int(
        event_sim._heap.pops + getattr(event_sim, "_tel_wakes", 0)
    )

    def cmp(name: str, a, b) -> None:
        if a != b:
            diff.mismatches.append(
                f"{label}: {name}: reference={a!r} event={b!r}"
            )

    cmp("cycles", ref.cycles, event.cycles)
    cmp("issued_total", ref.issued_total, event.issued_total)
    cmp("issued_by_category", ref.issued_by_category,
        event.issued_by_category)
    cmp("issued_by_stage", ref.issued_by_stage, event.issued_by_stage)
    cmp("queue_overhead_instrs", ref.queue_overhead_instrs,
        event.queue_overhead_instrs)
    cmp("tbs_completed", ref.tbs_completed, event.tbs_completed)
    cmp("stall_cycles", ref.stall_cycles, event.stall_cycles)
    cmp("stall_spans", ref.stall_spans, event.stall_spans)
    cmp("active_warp_cycles", ref.active_warp_cycles,
        event.active_warp_cycles)
    cmp("timeline", ref.timeline, event.timeline)
    rm, em = ref_sim.memory.stats, event_sim.memory.stats
    cmp("memory.l1_hits", rm.l1_hits, em.l1_hits)
    cmp("memory.l2_hits", rm.l2_hits, em.l2_hits)
    cmp("memory.dram_accesses", rm.dram_accesses, em.dram_accesses)
    cmp("memory.total_sectors", rm.total_sectors, em.total_sectors)
    cmp("memory.smem_words", rm.smem_words, em.smem_words)
    cmp("memory.drain_time", ref_sim.memory.drain_time(),
        event_sim.memory.drain_time())
    cmp("tma.vectors_issued", ref_sim.tma.vectors_issued,
        event_sim.tma.vectors_issued)
    cmp("tma.jobs_started", ref_sim.tma.jobs_started,
        event_sim.tma.jobs_started)
    return diff


def diff_spec(spec, config: GPUConfig | None = None) -> list[CoreDiff]:
    """Differential for one fuzz spec: the reference program's traces
    plus every OPTION_SETS specialization, each timed under the
    differential GPU matrix (functional memory effects are shared by
    construction — both cores replay the same traces — so the oracle's
    bit-identical-memory check rides on the fuzz gate, while this
    compares every timing observable)."""
    from dataclasses import replace

    from repro.core.compiler import WaspCompiler
    from repro.fexec.machine import run_kernel
    from repro.fuzz.generator import build_kernel
    from repro.fuzz.oracle import OPTION_SETS

    kernel = build_kernel(spec)
    variants: list[tuple[str, list[KernelTrace]]] = []
    ref_result = run_kernel(
        kernel.program, kernel.image_factory(), kernel.launch
    )
    variants.append(("plain", ref_result.traces))
    for name, options in OPTION_SETS:
        try:
            compiled = WaspCompiler(options).compile(
                kernel.program, num_warps=kernel.launch.num_warps
            )
        except (CompilerError, ReproError):
            continue
        if not compiled.specialized:
            continue
        launch = replace(
            kernel.launch,
            num_warps=kernel.launch.num_warps * compiled.num_stages,
        )
        try:
            result = run_kernel(
                compiled.program, kernel.image_factory(), launch
            )
        except ReproError:
            continue  # oracle territory (deadlock checks), not ours
        variants.append((name, result.traces))

    diffs = []
    for name, traces in variants:
        for gpu in differential_gpus(config):
            label = (
                f"seed{spec.seed}:{name}:"
                f"{gpu.features.queue_impl.value}-rfq{gpu.rfq_size}"
                f"-bw{gpu.l2_sectors_per_cycle:g}"
            )
            diffs.append(diff_traces(traces, gpu, label))
    return diffs


def diff_registry_kernel(kernel, eval_config, cache=None) -> list[CoreDiff]:
    """Differential for one registry kernel under one sweep config.

    Uses the shared trace cache, so sweeps that already ran pay no
    extra trace generation; both the plain and (when the compiler
    specializes) the specialized trace sets are compared under the
    config's GPU.
    """
    from repro.experiments.runner import (
        _GLOBAL_CACHE, _compiler_options_for, _gpu_for,
    )

    cache = cache or _GLOBAL_CACHE
    gpu = _gpu_for(kernel, eval_config)
    diffs = [diff_traces(
        cache.original(kernel).traces, gpu,
        f"{kernel.name}:{eval_config.name}:plain",
    )]
    options = _compiler_options_for(kernel, eval_config)
    if options is not None:
        try:
            entry = cache.specialized(kernel, options)
        except (CompilerError, ResourceError):
            entry = None
        if entry is not None:
            diffs.append(diff_traces(
                entry.traces, gpu,
                f"{kernel.name}:{eval_config.name}:specialized",
            ))
    return diffs
