"""The SM's view of the memory system: L1 -> L2 slice -> DRAM.

Completion times are computed eagerly at request time: the model is
deterministic, so a request's full path (hit level, bandwidth queueing,
latency) is known the moment it is issued.  That property is what lets
the SM core loop skip idle cycles safely.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.caches import BandwidthServer, SectorCache
from repro.sim.config import GPUConfig


@dataclass
class MemoryStats:
    """Counters for reporting (Figures 19 and 21)."""

    l1_hits: int = 0
    l2_hits: int = 0
    dram_accesses: int = 0
    total_sectors: int = 0
    smem_words: int = 0


class MemorySystem:
    """Global-memory hierarchy plus the SMEM bandwidth server."""

    def __init__(self, config: GPUConfig) -> None:
        self.config = config
        self.l1 = SectorCache(config.l1_sectors, config.l1_assoc)
        self.l2 = SectorCache(config.l2_sectors, config.l2_assoc)
        self.l2_bw = BandwidthServer(config.l2_sectors_per_cycle, "l2")
        self.dram_bw = BandwidthServer(config.dram_sectors_per_cycle, "dram")
        self.smem_bw = BandwidthServer(float(config.smem_words_per_cycle),
                                       "smem")
        self.stats = MemoryStats()
        # Optional profiler, attached by the SM simulator.  Recording
        # here (rather than at the issue sites in the SM core) covers
        # every requester uniformly — warp loads/stores AND the TMA
        # engine, whose traffic never occupies an issue slot.  The
        # hit-level mix is stamped at bandwidth-service time so traces
        # show when the hierarchy actually served the data (including
        # the post-retire drain).  Note the Figure-3 utilization
        # timeline is separate: it counts warp-issued sectors at issue
        # time in the SM core, preserving the figures' semantics.
        self.profiler = None

    def access_sector(self, now: float, sector: int) -> float:
        """One 32-byte sector request; returns data-ready time."""
        cfg = self.config
        self.stats.total_sectors += 1
        prof = self.profiler
        if self.l1.access(sector):
            self.stats.l1_hits += 1
            if prof is not None:
                prof.record_mem(now, 0)
            return now + cfg.l1_latency
        service = self.l2_bw.submit(now)
        if self.l2.access(sector):
            self.stats.l2_hits += 1
            if prof is not None:
                prof.record_mem(service, 1)
            return service + cfg.l2_latency
        self.stats.dram_accesses += 1
        dram_done = self.dram_bw.submit(service)
        if prof is not None:
            prof.record_mem(dram_done, 2)
        return dram_done + cfg.dram_latency

    def access_global(self, now: float, sectors: tuple[int, ...]) -> float:
        """A warp-wide global access; ready when the last sector lands."""
        if not sectors:
            return now + self.config.l1_latency
        return max(self.access_sector(now, s) for s in sectors)

    def access_smem(self, now: float, words: int) -> float:
        """A warp-wide shared-memory access."""
        self.stats.smem_words += words
        service = self.smem_bw.submit(now, max(1, words))
        return service + self.config.smem_latency

    def drain_time(self) -> float:
        """When all submitted memory traffic finishes service.

        Kernel completion waits for stores to drain; without this a
        pipeline that front-loads its loads would appear to beat the
        bandwidth roofline by retiring before its stores are serviced.
        """
        return max(self.l2_bw.free_at, self.dram_bw.free_at,
                   self.smem_bw.free_at)

    def l2_utilization(self, elapsed: float) -> float:
        return self.l2_bw.utilization(elapsed)

    def dram_utilization(self, elapsed: float) -> float:
        return self.dram_bw.utilization(elapsed)

    def smem_utilization(self, elapsed: float) -> float:
        return self.smem_bw.utilization(elapsed)
