"""TMA / WASP-TMA offload engine timing model (Section III-E).

A configuration instruction hands the engine a *job*: an ordered stream
of warp-wide vector requests.  The engine issues vectors at a fixed rate
without consuming processing-block issue slots.  RFQ-destined vectors
acquire a queue entry before issuing (the paper: "WASP-TMA global-RFQ
instructions acquire multiple entries, delaying issue until they are
available"), so a full queue back-pressures the engine.

Gather jobs are two-phase (Figure 8c): the index fetch must complete
before the dependent data fetch is issued.  Phase-2 requests are kept in
a pending FIFO and submitted when their index data lands, so the shared
bandwidth servers always see requests in nondecreasing time order — a
requirement of the deterministic queueing model.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.sim.barriers import INFINITY
from repro.sim.config import GPUConfig
from repro.sim.memory import MemorySystem
from repro.sim.queues import QueueChannel


@dataclass
class TmaJob:
    """One in-flight offload job."""

    mode: str  # 'tile' | 'stream' | 'gather'
    vector_sectors: list[tuple[int, ...]]
    data_vector_sectors: list[tuple[int, ...]] | None
    channel: QueueChannel | None
    smem_words_per_vector: int
    on_complete: Callable[[float], None] | None
    next_vector: int = 0
    next_issue_time: float = 0.0
    last_completion: float = 0.0
    # Gather phase 2: (index-ready time, vector id) in vector order.
    pending_phase2: deque = field(default_factory=deque)

    def issue_done(self) -> bool:
        return self.next_vector >= len(self.vector_sectors)

    def fully_done(self) -> bool:
        return self.issue_done() and not self.pending_phase2


class TmaEngine:
    """Per-SM offload engine shared by all resident thread blocks."""

    def __init__(self, config: GPUConfig, memory: MemorySystem) -> None:
        self._config = config
        self._memory = memory
        self._jobs: list[TmaJob] = []
        self.vectors_issued = 0
        self.jobs_started = 0

    def submit(
        self,
        now: float,
        job_desc: dict[str, Any],
        channel: QueueChannel | None,
        on_complete: Callable[[float], None] | None,
    ) -> None:
        """Accept a job from a TMA configuration instruction."""
        vectors = [tuple(v) for v in job_desc.get("vector_sectors", [])]
        data_vectors = job_desc.get("data_vector_sectors")
        if data_vectors is not None:
            data_vectors = [tuple(v) for v in data_vectors]
        smem_words = job_desc.get("smem_words", 0)
        per_vector_smem = 0
        if smem_words and vectors:
            per_vector_smem = max(1, smem_words // len(vectors))
        job = TmaJob(
            mode=job_desc.get("mode", "stream"),
            vector_sectors=vectors,
            data_vector_sectors=data_vectors,
            channel=channel,
            smem_words_per_vector=per_vector_smem,
            on_complete=on_complete,
            next_issue_time=now,
            last_completion=now,
        )
        self.jobs_started += 1
        if not vectors:
            if on_complete is not None:
                on_complete(now)
            return
        self._jobs.append(job)

    # -- engine stepping ------------------------------------------------

    def advance(self, now: float) -> None:
        """Issue every request whose time has come."""
        if not self._jobs:
            return
        rate = self._config.tma_vectors_per_cycle
        still_active: list[TmaJob] = []
        for job in self._jobs:
            self._advance_phase1(job, now, rate)
            self._advance_phase2(job, now)
            if job.fully_done():
                if job.on_complete is not None:
                    job.on_complete(job.last_completion)
                    job.on_complete = None
            else:
                still_active.append(job)
        self._jobs = still_active

    def _advance_phase1(self, job: TmaJob, now: float, rate: float) -> None:
        two_phase = job.data_vector_sectors is not None
        while not job.issue_done() and job.next_issue_time <= now:
            if job.channel is not None and not job.channel.can_push():
                # Back-pressure (the paper: "delaying issue until
                # entries are available"): retry once the consumer pops.
                job.next_issue_time = now + 1
                return
            issue_time = job.next_issue_time
            sectors = job.vector_sectors[job.next_vector]
            completion = self._memory.access_global(issue_time, sectors)
            self.vectors_issued += 1
            if two_phase:
                # Acquire the queue entry now; data follows in phase 2.
                # The reservation lives on the channel so concurrent
                # jobs sharing it cannot over-commit.
                if job.channel is not None:
                    job.channel.reserve()
                job.pending_phase2.append((completion, job.next_vector))
            else:
                self._finish_vector(job, completion)
            job.next_vector += 1
            job.next_issue_time += 1.0 / rate

    def _advance_phase2(self, job: TmaJob, now: float) -> None:
        while job.pending_phase2 and job.pending_phase2[0][0] <= now:
            index_ready, vector = job.pending_phase2.popleft()
            data_sectors = job.data_vector_sectors[vector]
            completion = self._memory.access_global(index_ready, data_sectors)
            self._finish_vector(job, completion, reserved=True)

    def _finish_vector(
        self, job: TmaJob, completion: float, reserved: bool = False
    ) -> None:
        if job.smem_words_per_vector:
            # Charge SMEM bandwidth at data arrival; the write-latency
            # portion is folded into the completion below.
            smem_done = self._memory.access_smem(
                completion, job.smem_words_per_vector
            )
            completion = smem_done
        if job.channel is not None:
            if reserved:
                job.channel.push_reserved(completion)
            else:
                job.channel.push(completion)
        job.last_completion = max(job.last_completion, completion)

    def next_event_time(self) -> float:
        """Earliest time the engine wants to run again (inf if idle)."""
        best = INFINITY
        for job in self._jobs:
            if not job.issue_done():
                best = min(best, job.next_issue_time)
            if job.pending_phase2:
                best = min(best, job.pending_phase2[0][0])
        return best

    def busy(self) -> bool:
        return bool(self._jobs)
