"""SM occupancy: how many thread blocks fit at once.

Occupancy is limited by the register file, shared memory, and warp
slots.  WASP's per-stage register allocation (Section III-B) shrinks the
register footprint of specialized blocks, and the choice of queue
implementation moves queue storage between the register file (RFQ) and
SMEM (software queues) — both directly change this calculation, which is
how register savings turn into performance (Figure 15).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.mapping import register_footprint, rfq_register_words
from repro.core.specs import ThreadBlockSpec
from repro.errors import ResourceError
from repro.sim.config import GPUConfig, QueueImpl


@dataclass(frozen=True)
class Occupancy:
    """Resolved residency for one kernel on one SM."""

    max_resident_tbs: int
    register_words_per_tb: int
    smem_words_per_tb: int
    limited_by: str


def compute_occupancy(
    config: GPUConfig,
    spec: ThreadBlockSpec | None,
    num_warps: int,
    program_registers: int,
    smem_words: int,
    warp_width: int,
) -> Occupancy:
    """Maximum resident thread blocks for a kernel."""
    per_stage = config.features.per_stage_registers and spec is not None
    reg_words = register_footprint(
        spec,
        num_warps=num_warps,
        program_registers=program_registers,
        threads_per_warp=warp_width,
        per_stage=per_stage,
    )
    smem_total = smem_words
    if spec is not None and spec.queues:
        queue_words = rfq_register_words(spec, config.rfq_size, warp_width)
        if config.features.queue_impl is QueueImpl.RFQ:
            reg_words += queue_words
        else:
            smem_total += queue_words

    limits: dict[str, int] = {}
    if reg_words > 0:
        limits["registers"] = config.registers_per_sm // reg_words
    limits["warp_slots"] = config.warps_per_sm // max(1, num_warps)
    if smem_total > 0:
        limits["smem"] = config.smem_capacity_words // smem_total
    limits["tb_slots"] = config.max_resident_tbs

    limiter = min(limits, key=limits.get)
    resident = limits[limiter]
    if resident < 1:
        raise ResourceError(
            f"thread block does not fit on the SM: {limiter} "
            f"(registers={reg_words} words, smem={smem_total} words, "
            f"warps={num_warps})"
        )
    return Occupancy(
        max_resident_tbs=resident,
        register_words_per_tb=reg_words,
        smem_words_per_tb=smem_total,
        limited_by=limiter,
    )
