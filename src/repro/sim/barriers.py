"""Timing barriers: arrive/wait with time-stamped arrivals, plus BAR.SYNC.

Arrivals can be scheduled in the future (a TMA tile transfer arrives at
its completion time), so each barrier keeps a sorted list of arrival
times; the *n*-th wait by a warp passes at the time threshold ``n *
expected - initial_credit`` arrivals have landed.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any

INFINITY = float("inf")


@dataclass
class TimedArriveWait:
    """One named arrive/wait barrier with timed generation counting."""

    barrier_id: str
    expected: int = 1
    initial_credit: int = 0
    arrival_times: list[float] = field(default_factory=list)
    wait_counts: dict[int, int] = field(default_factory=dict)
    tb_index: int = 0
    profiler: Any = None  # PipelineProfiler when arrivals are traced
    # Event-core wake registration (repro.sim.sm_event): warps whose
    # wait has no pass time yet (needs more arrivals) register here;
    # the installed ``wake_hook`` drains the list on every arrival.
    # The reference core leaves both untouched.
    waiters: list = field(default_factory=list)
    wake_hook: Any = None

    def arrive(self, time: float) -> None:
        bisect.insort(self.arrival_times, time)
        if self.profiler is not None:
            self.profiler.record_barrier(self.tb_index, self.barrier_id,
                                         time)
        if self.waiters:
            self.wake_hook(self.waiters)

    def wait_pass_time(self, warp_key: int) -> float:
        """When the next wait by ``warp_key`` passes (may be inf)."""
        n = self.wait_counts.get(warp_key, 0) + 1
        needed = n * self.expected - self.initial_credit
        if needed <= 0:
            return 0.0
        if needed > len(self.arrival_times):
            return INFINITY
        return self.arrival_times[needed - 1]

    def record_wait(self, warp_key: int) -> None:
        self.wait_counts[warp_key] = self.wait_counts.get(warp_key, 0) + 1


@dataclass
class TimedSyncBarrier:
    """All-warps thread-block barrier with timed phases."""

    barrier_id: str
    num_warps: int
    phase_arrivals: dict[int, list[float]] = field(default_factory=dict)
    warp_phase: dict[int, int] = field(default_factory=dict)
    arrived: set = field(default_factory=set)
    tb_index: int = 0
    profiler: Any = None  # PipelineProfiler when arrivals are traced
    # Event-core wake registration (see TimedArriveWait above).
    waiters: list = field(default_factory=list)
    wake_hook: Any = None

    def arrive(self, warp_key: int, time: float) -> None:
        phase = self.warp_phase.get(warp_key, 0)
        if (warp_key, phase) in self.arrived:
            return
        self.arrived.add((warp_key, phase))
        self.phase_arrivals.setdefault(phase, []).append(time)
        if self.profiler is not None:
            self.profiler.record_barrier(self.tb_index, self.barrier_id,
                                         time)
        if self.waiters:
            self.wake_hook(self.waiters)

    def pass_time(self, warp_key: int) -> float:
        """When this warp's current sync releases (inf if not yet)."""
        phase = self.warp_phase.get(warp_key, 0)
        times = self.phase_arrivals.get(phase, ())
        if len(times) < self.num_warps:
            return INFINITY
        return max(times)

    def record_pass(self, warp_key: int) -> None:
        self.warp_phase[warp_key] = self.warp_phase.get(warp_key, 0) + 1


class BarrierFile:
    """All barriers of one resident thread block."""

    def __init__(
        self,
        num_warps: int,
        expected: dict[str, int],
        initial: dict[str, int],
        profiler: Any = None,
        tb_index: int = 0,
    ) -> None:
        self._num_warps = num_warps
        self._expected = expected
        self._initial = initial
        self._profiler = profiler
        self._tb_index = tb_index
        self._aw: dict[str, TimedArriveWait] = {}
        self._sync: dict[str, TimedSyncBarrier] = {}

    def arrive_wait(self, barrier_id: str) -> TimedArriveWait:
        barrier = self._aw.get(barrier_id)
        if barrier is None:
            barrier = TimedArriveWait(
                barrier_id,
                expected=self._expected.get(barrier_id, 1),
                initial_credit=self._initial.get(barrier_id, 0),
                tb_index=self._tb_index,
                profiler=self._profiler,
            )
            self._aw[barrier_id] = barrier
        return barrier

    def sync(self, barrier_id: str) -> TimedSyncBarrier:
        barrier = self._sync.get(barrier_id)
        if barrier is None:
            barrier = TimedSyncBarrier(
                barrier_id,
                num_warps=self._num_warps,
                tb_index=self._tb_index,
                profiler=self._profiler,
            )
            self._sync[barrier_id] = barrier
        return barrier
