"""High-level simulation API.

``simulate_program`` runs a kernel functionally (producing traces and
memory side effects) and then replays the traces on the timing model;
``simulate_kernel`` skips the functional step when traces already exist
(e.g. to time the same trace under several GPU configurations).

Both entry points accept an optional :class:`PipelineProfiler`; when
one is attached the timing replay additionally records the event trace,
queue-occupancy samples and memory service mix that feed the Chrome
trace exporter.  Stall-cause attribution is collected unconditionally —
it is interval-based and adds only O(1) work per issue attempt.
"""

from __future__ import annotations

import os

from repro.errors import SimulationError
from repro.fexec.launch import LaunchConfig
from repro.fexec.machine import run_kernel
from repro.fexec.memory_image import MemoryImage
from repro.fexec.trace import KernelTrace
from repro.isa.program import Program
from repro.profiling import PipelineProfiler
from repro.sim.config import GPUConfig
from repro.sim.occupancy import Occupancy
from repro.sim.results import TIMELINE_BUCKET, SimResult, SMStats
from repro.sim.sm import SMSimulator
from repro.sim.sm_event import EventSMSimulator
from repro.telemetry.registry import TELEMETRY
from repro.telemetry.spans import span

__all__ = [
    "SimResult", "make_simulator", "simulate_kernel", "simulate_program",
]

_CORES = {
    "event": EventSMSimulator,
    "reference": SMSimulator,
}

#: Environment override for the session-wide default core.  An explicit
#: ``core=`` argument (the differential harness comparing both) always
#: wins; otherwise the variable beats ``config.core``, so a whole run
#: (e.g. the nightly fuzz sweep) can be switched without touching
#: configs.
_CORE_ENV = "REPRO_SIM_CORE"


def make_simulator(
    config: GPUConfig,
    traces: list[KernelTrace],
    occupancy: Occupancy | None = None,
    profiler: PipelineProfiler | None = None,
    core: str | None = None,
) -> SMSimulator:
    """Instantiate the configured SM core loop for ``traces``."""
    name = core or os.environ.get(_CORE_ENV) or config.core
    cls = _CORES.get(name)
    if cls is None:
        raise SimulationError(
            f"unknown simulator core {name!r}: expected one of "
            f"{sorted(_CORES)}"
        )
    return cls(config, traces, occupancy=occupancy, profiler=profiler)


def simulate_kernel(
    traces: list[KernelTrace],
    config: GPUConfig,
    occupancy: Occupancy | None = None,
    profiler: PipelineProfiler | None = None,
    core: str | None = None,
) -> SimResult:
    """Replay traces on the timing model and summarize."""
    sim = make_simulator(config, traces, occupancy=occupancy,
                         profiler=profiler, core=core)
    with span("sim", "replay"):
        stats = sim.run()
    return _summarize(sim, stats, profiler)


def simulate_program(
    program: Program,
    memory: MemoryImage,
    launch: LaunchConfig,
    config: GPUConfig,
    profiler: PipelineProfiler | None = None,
) -> SimResult:
    """Functionally execute then time ``program``."""
    result = run_kernel(program, memory, launch, sanitize=config.sanitize)
    if config.sanitize and result.races and TELEMETRY.enabled:
        TELEMETRY.counter(
            "sanitizer_races_total",
            help="Races observed by the dynamic SMEM sanitizer.",
        ).inc(len(result.races))
    sim = simulate_kernel(result.traces, config, profiler=profiler)
    sim.sanitizer_races = list(result.races)
    return sim


def _summarize(
    sim: SMSimulator,
    stats: SMStats,
    profiler: PipelineProfiler | None = None,
) -> SimResult:
    elapsed = max(1.0, stats.cycles)
    timeline = []
    # Cover the whole run, including trailing buckets where nothing
    # issued but memory traffic was still draining — and buckets up to
    # the final cycle count (which waits for the memory drain), so the
    # timeline's time axis matches ``cycles``.
    last_bucket = max(
        max(stats.timeline, default=0),
        (int(elapsed) - 1) // TIMELINE_BUCKET,
    )
    empty = None
    for bucket_index in range(last_bucket + 1):
        bucket = stats.timeline.get(bucket_index)
        if bucket is None:
            if empty is None:
                from repro.sim.results import TimelineBucket

                empty = TimelineBucket()
            bucket = empty
        time = bucket_index * TIMELINE_BUCKET
        compute_util = bucket.tensor_fp_issued / TIMELINE_BUCKET
        mem_util = min(
            1.0,
            bucket.sectors
            / (sim.config.l2_sectors_per_cycle * TIMELINE_BUCKET),
        )
        timeline.append((time, compute_util, mem_util))
    return SimResult(
        kernel_name=sim.traces[0].kernel_name,
        cycles=stats.cycles,
        issued_total=stats.issued_total,
        issued_by_category=dict(stats.issued_by_category),
        issued_by_stage=dict(stats.issued_by_stage),
        queue_overhead_instrs=stats.queue_overhead_instrs,
        l2_utilization=sim.memory.l2_utilization(elapsed),
        dram_utilization=sim.memory.dram_utilization(elapsed),
        smem_utilization=sim.memory.smem_utilization(elapsed),
        l1_hit_rate=sim.memory.l1.hit_rate(),
        occupancy=sim.occupancy,
        timeline=timeline,
        tbs_completed=stats.tbs_completed,
        stall_cycles=dict(stats.stall_cycles),
        active_warp_cycles=stats.active_warp_cycles,
        queue_profiles=(
            profiler.queue_profiles() if profiler is not None else []
        ),
        stall_spans=stats.stall_spans,
    )
