"""Timing model of inter-stage queues (RFQ and SMEM implementations).

A queue channel connects one producer warp to one consumer warp
(per pipeline slice).  Entries are *allocated at push issue* and become
*ready* when the producing load's data returns; pops consume entries in
FIFO order and must wait for the head entry's data.

The RFQ implementation (Section III-C) is free beyond the register
storage.  The SMEM implementation — what a software-only compiler must
use on baseline hardware — charges the overheads the paper describes:
extra instructions and SMEM bandwidth on both sides.  Those costs are
applied by the SM core, which consults :attr:`QueueChannel.impl`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.errors import SimulationError
from repro.sim.config import QueueImpl


@dataclass
class QueueChannel:
    """One producer->consumer FIFO channel with timed entries."""

    queue_id: int
    slice_id: int
    capacity: int
    impl: QueueImpl = QueueImpl.RFQ
    _entries: deque = field(default_factory=deque)  # data-ready times
    reserved: int = 0  # entries acquired by in-flight TMA phase-1 vectors
    tb_index: int = 0
    profiler: Any = None  # PipelineProfiler when occupancy is sampled
    # Event-core wake registration (repro.sim.sm_event).  A warp whose
    # pop found the channel empty registers on ``empty_waiters``; a
    # warp whose push found it full registers on ``full_waiters``.  The
    # owning core installs ``wake_hook`` alongside the first waiter;
    # the hook drains the list when the blocking condition can have
    # changed: a push (or reserved-entry fill) for the empty side, a
    # pop for the full side — ``reserve``/``push_reserved`` keep
    # ``len + reserved`` constant, so they never free space.  The
    # reference core leaves all three untouched (zero cost).
    empty_waiters: list = field(default_factory=list)
    full_waiters: list = field(default_factory=list)
    wake_hook: Any = None

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise SimulationError("queue capacity must be positive")

    def _record(self, kind: str) -> None:
        prof = self.profiler
        if prof is not None:
            prof.queue_event(
                self.tb_index, self.queue_id, self.slice_id,
                len(self._entries) + self.reserved, self.capacity, kind,
            )

    # -- producer side --------------------------------------------------

    def can_push(self) -> bool:
        return len(self._entries) + self.reserved < self.capacity

    def reserve(self) -> None:
        """Acquire an entry ahead of its data (WASP-TMA phase 1)."""
        if not self.can_push():
            raise SimulationError(
                f"reserve on full queue {self.queue_id}/{self.slice_id}"
            )
        self.reserved += 1
        self._record("reserve")

    def push_reserved(self, ready_time: float) -> None:
        """Fill a previously reserved entry (WASP-TMA phase 2)."""
        if self.reserved <= 0:
            raise SimulationError(
                f"unmatched reserved push on {self.queue_id}/{self.slice_id}"
            )
        self.reserved -= 1
        self._entries.append(ready_time)
        self._record("push")
        if self.empty_waiters:
            self.wake_hook(self.empty_waiters)

    def push(self, ready_time: float) -> None:
        if not self.can_push():
            raise SimulationError(
                f"push into full queue {self.queue_id}/{self.slice_id}"
            )
        self._entries.append(ready_time)
        self._record("push")
        if self.empty_waiters:
            self.wake_hook(self.empty_waiters)

    # -- consumer side --------------------------------------------------

    def occupancy(self) -> int:
        return len(self._entries)

    def head_ready_time(self) -> float | None:
        """Data-ready time of the head entry, or None when empty."""
        if not self._entries:
            return None
        return self._entries[0]

    def pop(self) -> float:
        if not self._entries:
            raise SimulationError(
                f"pop from empty queue {self.queue_id}/{self.slice_id}"
            )
        ready = self._entries.popleft()
        self._record("pop")
        if self.full_waiters:
            self.wake_hook(self.full_waiters)
        return ready

    # -- scheduler scoreboard bits (III-C / III-D) -----------------------

    def is_empty(self) -> bool:
        return not self._entries

    def is_full(self) -> bool:
        return len(self._entries) + self.reserved >= self.capacity

    def has_ready_data(self, now: float) -> bool:
        head = self.head_ready_time()
        return head is not None and head <= now


class QueueFile:
    """All queue channels of one resident thread block."""

    def __init__(
        self,
        capacity_by_queue: dict[int, int],
        impl: QueueImpl,
        profiler: Any = None,
        tb_index: int = 0,
    ) -> None:
        self._capacity = capacity_by_queue
        self._impl = impl
        self._profiler = profiler
        self._tb_index = tb_index
        self._channels: dict[tuple[int, int], QueueChannel] = {}

    def channel(self, queue_id: int, slice_id: int) -> QueueChannel:
        key = (queue_id, slice_id)
        chan = self._channels.get(key)
        if chan is None:
            capacity = self._capacity.get(queue_id, 32)
            chan = QueueChannel(
                queue_id=queue_id,
                slice_id=slice_id,
                capacity=capacity,
                impl=self._impl,
                tb_index=self._tb_index,
                profiler=self._profiler,
            )
            self._channels[key] = chan
        return chan

    def channels(self) -> list[QueueChannel]:
        return list(self._channels.values())
