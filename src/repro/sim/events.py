"""Wakeup heap for the event-skipping SM core.

The heap holds *sleeping* warps — warps whose next issue attempt has a
known finite time (a scoreboard release, a queue head's data-ready
time, an MSHR fill, a timed barrier release).  The event core pops
every warp whose time has come at the top of each processed cycle and
re-admits it to the arbitration scan; between pops the warp costs
nothing.

Entries are ``(wake time, warp key, warp)``.  The warp key breaks time
ties, so the pop order of simultaneous wakeups is a pure function of
the heap *contents* — independent of the order events were inserted.
(The scan then re-sorts awake warps by their processing-block position
anyway, but deterministic pop order keeps the data structure itself
reproducible, which the edge-case tests assert directly.)
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any

from repro.sim.barriers import INFINITY

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.sm import _WarpRun

__all__ = ["WakeupHeap"]


class WakeupHeap:
    """Min-heap of sleeping warps keyed by wake time, tie-broken by key.

    Keeps raw telemetry tallies (pushes, pops, peak depth) as plain
    integer adds; the event core harvests them into the metrics
    registry at end of run (DESIGN.md §7) so the counters cost a few
    attribute adds even when telemetry is disabled.
    """

    __slots__ = ("_items", "pushes", "pops", "max_depth")

    def __init__(self) -> None:
        self._items: list[tuple[float, int, Any]] = []
        self.pushes = 0
        self.pops = 0
        self.max_depth = 0

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def push(self, time: float, warp: "_WarpRun") -> None:
        heapq.heappush(self._items, (time, warp.key, warp))
        self.pushes += 1
        if len(self._items) > self.max_depth:
            self.max_depth = len(self._items)

    def next_time(self) -> float:
        """Earliest wake time in the heap (inf when empty)."""
        if not self._items:
            return INFINITY
        return self._items[0][0]

    def pop(self) -> "_WarpRun":
        """Remove and return the warp with the earliest wake time."""
        self.pops += 1
        return heapq.heappop(self._items)[2]

    def pop_due(self, now: float) -> list["_WarpRun"]:
        """Remove and return every warp whose wake time is <= ``now``.

        Returned in (time, key) order — deterministic regardless of
        insertion order.
        """
        items = self._items
        due: list[Any] = []
        while items and items[0][0] <= now:
            due.append(heapq.heappop(items)[2])
        self.pops += len(due)
        return due
