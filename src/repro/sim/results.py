"""Simulation result containers.

Everything here is plain data: results cross process boundaries in the
parallel experiment runner (pickled back from pool workers), so the
containers hold only builtins, enums and other dataclasses — no live
simulator state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.opcodes import InstrCategory
from repro.sim.occupancy import Occupancy

TIMELINE_BUCKET = 256  # cycles per utilization-timeline bucket (Figure 3)


@dataclass
class TimelineBucket:
    """Activity within one timeline bucket."""

    issued: int = 0
    tensor_fp_issued: int = 0
    sectors: int = 0


@dataclass
class SMStats:
    """Counters accumulated by the SM core loop."""

    cycles: float = 0.0
    issued_total: int = 0
    issued_by_category: dict[InstrCategory, int] = field(default_factory=dict)
    issued_by_stage: dict[int, int] = field(default_factory=dict)
    queue_overhead_instrs: int = 0
    timeline: dict[int, TimelineBucket] = field(default_factory=dict)
    tbs_completed: int = 0

    def count_issue(
        self, time: float, category: InstrCategory, stage: int, tensor_fp: bool
    ) -> None:
        self.issued_total += 1
        self.issued_by_category[category] = (
            self.issued_by_category.get(category, 0) + 1
        )
        self.issued_by_stage[stage] = self.issued_by_stage.get(stage, 0) + 1
        bucket = self.timeline.setdefault(
            int(time) // TIMELINE_BUCKET, TimelineBucket()
        )
        bucket.issued += 1
        if tensor_fp:
            bucket.tensor_fp_issued += 1

    def count_sectors(self, time: float, count: int) -> None:
        bucket = self.timeline.setdefault(
            int(time) // TIMELINE_BUCKET, TimelineBucket()
        )
        bucket.sectors += count


@dataclass
class SimResult:
    """Outcome of timing one kernel on one GPU configuration."""

    kernel_name: str
    cycles: float
    issued_total: int
    issued_by_category: dict[InstrCategory, int]
    issued_by_stage: dict[int, int]
    queue_overhead_instrs: int
    l2_utilization: float
    dram_utilization: float
    smem_utilization: float
    l1_hit_rate: float
    occupancy: Occupancy
    timeline: list[tuple[float, float, float]] = field(default_factory=list)
    tbs_completed: int = 0

    @property
    def dynamic_instructions(self) -> int:
        return self.issued_total

    def category_fraction(self, category: InstrCategory) -> float:
        if not self.issued_total:
            return 0.0
        return self.issued_by_category.get(category, 0) / self.issued_total
