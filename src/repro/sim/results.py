"""Simulation result containers."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.opcodes import InstrCategory

TIMELINE_BUCKET = 256  # cycles per utilization-timeline bucket (Figure 3)


@dataclass
class TimelineBucket:
    """Activity within one timeline bucket."""

    issued: int = 0
    tensor_fp_issued: int = 0
    sectors: int = 0


@dataclass
class SMStats:
    """Counters accumulated by the SM core loop."""

    cycles: float = 0.0
    issued_total: int = 0
    issued_by_category: dict[InstrCategory, int] = field(default_factory=dict)
    issued_by_stage: dict[int, int] = field(default_factory=dict)
    queue_overhead_instrs: int = 0
    timeline: dict[int, TimelineBucket] = field(default_factory=dict)
    tbs_completed: int = 0

    def count_issue(
        self, time: float, category: InstrCategory, stage: int, tensor_fp: bool
    ) -> None:
        self.issued_total += 1
        self.issued_by_category[category] = (
            self.issued_by_category.get(category, 0) + 1
        )
        self.issued_by_stage[stage] = self.issued_by_stage.get(stage, 0) + 1
        bucket = self.timeline.setdefault(
            int(time) // TIMELINE_BUCKET, TimelineBucket()
        )
        bucket.issued += 1
        if tensor_fp:
            bucket.tensor_fp_issued += 1

    def count_sectors(self, time: float, count: int) -> None:
        bucket = self.timeline.setdefault(
            int(time) // TIMELINE_BUCKET, TimelineBucket()
        )
        bucket.sectors += count
