"""Simulation result containers.

Everything here is plain data: results cross process boundaries in the
parallel experiment runner (pickled back from pool workers), so the
containers hold only builtins, enums and other dataclasses — no live
simulator state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.opcodes import InstrCategory
from repro.profiling.stalls import (
    TIMELINE_BUCKET,
    QueueChannelProfile,
    StallCause,
)
from repro.sim.occupancy import Occupancy

__all__ = [
    "TIMELINE_BUCKET",
    "QueueChannelProfile",
    "SMStats",
    "SimResult",
    "StallCause",
    "TimelineBucket",
]


@dataclass
class TimelineBucket:
    """Activity within one timeline bucket."""

    issued: int = 0
    tensor_fp_issued: int = 0
    sectors: int = 0


@dataclass
class SMStats:
    """Counters accumulated by the SM core loop."""

    cycles: float = 0.0
    issued_total: int = 0
    issued_by_category: dict[InstrCategory, int] = field(default_factory=dict)
    issued_by_stage: dict[int, int] = field(default_factory=dict)
    queue_overhead_instrs: int = 0
    timeline: dict[int, TimelineBucket] = field(default_factory=dict)
    tbs_completed: int = 0
    #: (pipe stage, cause) -> cycles a warp of that stage spent stalled.
    stall_cycles: dict[tuple[int, StallCause], float] = field(
        default_factory=dict
    )
    #: Total accounted warp-cycles: issues plus attributed stalls.
    active_warp_cycles: float = 0.0
    #: Number of closed stall intervals (spans).  Stall attribution is
    #: interval-based in both SM cores; the span count is part of the
    #: reference/event differential contract — a core that merged or
    #: split intervals could still match ``stall_cycles`` totals, but
    #: not this.
    stall_spans: int = 0

    def count_issue(
        self, time: float, category: InstrCategory, stage: int, tensor_fp: bool
    ) -> None:
        self.issued_total += 1
        self.active_warp_cycles += 1.0
        self.issued_by_category[category] = (
            self.issued_by_category.get(category, 0) + 1
        )
        self.issued_by_stage[stage] = self.issued_by_stage.get(stage, 0) + 1
        index = int(time) // TIMELINE_BUCKET
        bucket = self.timeline.get(index)
        if bucket is None:
            bucket = self.timeline[index] = TimelineBucket()
        bucket.issued += 1
        if tensor_fp:
            bucket.tensor_fp_issued += 1

    def count_sectors(self, time: float, count: int) -> None:
        index = int(time) // TIMELINE_BUCKET
        bucket = self.timeline.get(index)
        if bucket is None:
            bucket = self.timeline[index] = TimelineBucket()
        bucket.sectors += count

    def count_stall(
        self, stage: int, cause: StallCause, cycles: float
    ) -> None:
        """Charge ``cycles`` of one warp's time to ``cause``."""
        key = (stage, cause)
        self.stall_cycles[key] = self.stall_cycles.get(key, 0.0) + cycles
        self.active_warp_cycles += cycles
        self.stall_spans += 1


@dataclass
class SimResult:
    """Outcome of timing one kernel on one GPU configuration."""

    kernel_name: str
    cycles: float
    issued_total: int
    issued_by_category: dict[InstrCategory, int]
    issued_by_stage: dict[int, int]
    queue_overhead_instrs: int
    l2_utilization: float
    dram_utilization: float
    smem_utilization: float
    l1_hit_rate: float
    occupancy: Occupancy
    timeline: list[tuple[float, float, float]] = field(default_factory=list)
    tbs_completed: int = 0
    #: (pipe stage, cause) -> stalled warp-cycles (always collected).
    stall_cycles: dict[tuple[int, StallCause], float] = field(
        default_factory=dict
    )
    #: issued_total + sum(stall_cycles.values()); the profiler invariant
    #: is ``active_warp_cycles == issued_total + stall total``.
    active_warp_cycles: float = 0.0
    #: Queue occupancy profiles; populated only when a profiler was
    #: attached to the simulation.
    queue_profiles: list[QueueChannelProfile] = field(default_factory=list)
    #: Closed stall intervals (see :attr:`SMStats.stall_spans`).
    stall_spans: int = 0
    #: Races observed by the opt-in SMEM sanitizer
    #: (``GPUConfig(sanitize=True)``); empty when disabled.
    sanitizer_races: list = field(default_factory=list)

    @property
    def dynamic_instructions(self) -> int:
        return self.issued_total

    def category_fraction(self, category: InstrCategory) -> float:
        if not self.issued_total:
            return 0.0
        return self.issued_by_category.get(category, 0) / self.issued_total

    # -- stall-attribution views ----------------------------------------

    @property
    def stall_total(self) -> float:
        return sum(self.stall_cycles.values())

    def stall_by_cause(self) -> dict[StallCause, float]:
        """Stalled warp-cycles rolled up over pipeline stages."""
        rollup: dict[StallCause, float] = {}
        for (_stage, cause), cycles in self.stall_cycles.items():
            rollup[cause] = rollup.get(cause, 0.0) + cycles
        return rollup

    def stall_by_stage(self) -> dict[int, dict[StallCause, float]]:
        """Stalled warp-cycles per pipeline stage, per cause."""
        rollup: dict[int, dict[StallCause, float]] = {}
        for (stage, cause), cycles in self.stall_cycles.items():
            per_stage = rollup.setdefault(stage, {})
            per_stage[cause] = per_stage.get(cause, 0.0) + cycles
        return rollup

    def stall_fraction(self, cause: StallCause) -> float:
        """Share of active warp-cycles lost to ``cause``."""
        if self.active_warp_cycles <= 0:
            return 0.0
        return self.stall_by_cause().get(cause, 0.0) / self.active_warp_cycles
