"""Event-skipping SM core: cycle-exact with the reference, but only
awake warps pay.

The reference loop (:mod:`repro.sim.sm`) already skips idle *time* —
when nothing issues it jumps ``now`` to the earliest known wake — but
on every processed cycle it still scans every resident warp, re-arms
every warp blocked on another agent (``_rearm_infinite_waits``), and
re-checks every thread block for retirement.  On a busy SM the
per-cycle cost is dominated by warps that provably cannot issue.

This core processes the *same* cycle sequence but touches only warps
that can act.  Warps live in exactly one of four places:

* **Awake** (``_awake``, one list per processing block, sorted by the
  warp's position in the block's warp list): eligible issuers and
  warps whose wake time has come.  Only these are scanned.
* **Sleeping** (``_heap``, a :class:`~repro.sim.events.WakeupHeap`):
  blocked with a known finite wake — a scoreboard release, a queue
  head's data-ready time, an MSHR fill, a timed barrier release.
  Popped when the clock reaches them.
* **Registered** (waiter lists on :class:`~repro.sim.queues
  .QueueChannel` and the barrier classes): blocked with *no* known
  wake — an empty queue, a full queue, a barrier short of arrivals.
  Woken by the unblocking event itself (push / pop / arrive).
* **Pending** (``_pending_wakes`` then ``_buffer``): notified warps
  staged for a later cycle (see exactness note 2 below).

Exactness — the differential contract enforced by
:mod:`repro.sim.differential` and CI's ``core-differential`` job —
requires reproducing two subtle reference behaviours:

1. *Intra-cycle visibility.*  The reference polls warps in processing-
   block order, then list order within the block; an event produced
   while polling warp ``w`` (a ``BAR_SYNC`` first-poll arrival) or
   while executing block ``p``'s winner is seen this cycle only by
   warps polled later.  Notifications therefore compare the blocked
   warp's ``(pb, pos)`` against the event context ``(_scan_pb,
   _scan_pos)``: strictly-later warps join the current scan (the
   insort keeps position order), all others wait.

2. *Re-arm gating.*  The reference re-polls infinitely-blocked warps
   on the cycle after any progress (an issue anywhere, or a busy TMA
   engine) — and only then.  A warp unblocked on a no-progress cycle
   is invisible at the jump target; it is polled again only after the
   next progress cycle.  ``_inf_pollable`` tracks whether the previous
   processed cycle made progress (may this cycle's scan see a newly
   notified warp at all), and notified warps that cannot join the
   current cycle sit in ``_pending_wakes`` until a progress cycle
   ends, then move to ``_buffer`` for the next processed cycle —
   mirroring ``_rearm_infinite_waits`` exactly.

Warps never polled by this core are exactly the reference's no-op
polls: a registered warp's blocking condition can only change through
the hooked events, and re-polling it has no side effects (the
``BAR_SYNC`` arrival fires once, guarded by ``sync_marked``; repeated
``_note_stall`` with an unchanged cause is free).  Everything
observable — TMA stepping, arbitration order, stall-interval
accounting, retirement/admission, the clock jump and deadlock
detection (both computed from pre-retire wake candidates, like the
reference) — happens at the same cycle with the same inputs, so
cycles, issue order, memory traffic, stall spans and profiles are
bit-identical.  ``GPUConfig(core="reference")`` keeps the original
loop as the escape hatch and differential pair.
"""

from __future__ import annotations

import math
from bisect import bisect_left, insort
from operator import attrgetter

from repro.errors import SimulationError
from repro.fexec.trace import KernelTrace
from repro.isa.opcodes import Opcode
from repro.profiling.stalls import StallCause
from repro.sim.barriers import INFINITY
from repro.sim.events import WakeupHeap
from repro.sim.results import SMStats
from repro.sim.sm import _GTO_KEY, SMSimulator, _ResidentTB, _WarpRun
from repro.telemetry.registry import (
    CYCLES_BUCKETS, DEPTH_BUCKETS, TELEMETRY,
)

__all__ = ["EventSMSimulator"]

_POS = attrgetter("pos")
#: Sentinel scan position meaning "after every warp of the block".
_AFTER_ALL = 1 << 30


class EventSMSimulator(SMSimulator):
    """Drop-in replacement for :class:`SMSimulator` (same results)."""

    _tel_subsystem = "eventcore"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        blocks = self.config.processing_blocks
        self._heap = WakeupHeap()
        self._awake: list[list[_WarpRun]] = [[] for _ in range(blocks)]
        # Notified-but-not-yet-pollable warps (exactness note 2).
        self._pending_wakes: list[_WarpRun] = []
        # Warps to re-admit to the scan at the next processed cycle.
        self._buffer: list[_WarpRun] = []
        # Thread blocks that had a warp finish this cycle (retirement
        # candidates; the reference re-checks every block every cycle).
        self._dead_tbs: set[_ResidentTB] = set()
        # Would the reference have re-armed infinite waits at the end
        # of the previous processed cycle?
        self._inf_pollable = False
        # Event context for intra-cycle visibility (exactness note 1).
        self._scan_pb = -1
        self._scan_pos = _AFTER_ALL
        self._now = 0.0
        # Raw telemetry tallies: warp wake/sleep traffic and the
        # skipped-cycle span distribution (fixed buckets so the jump
        # branch does one bisect into a 13-bound tuple, no allocation).
        self._tel_wakes = 0
        self._tel_buffered = 0
        self._tel_reg_queue_empty = 0
        self._tel_reg_queue_full = 0
        self._tel_reg_barrier = 0
        self._tel_skip_counts = [0] * (len(CYCLES_BUCKETS) + 1)

    # -- residency ------------------------------------------------------

    def _renumber(self) -> None:
        for pb_warps in self._pbs:
            for index, warp in enumerate(pb_warps):
                warp.pos = index

    def _place(self, trace: KernelTrace, now: float) -> None:
        super()._place(trace, now)
        self._renumber()
        tb = self._resident[-1]
        for warp in tb.warps:
            if not warp.done:
                insort(self._awake[warp.pb], warp, key=_POS)
        if tb.done():
            # A block whose every warp has an empty trace retires
            # without ever issuing.
            self._dead_tbs.add(tb)

    def _retire_finished(self, now: float) -> None:
        dead = self._dead_tbs
        if not dead:
            return
        self._dead_tbs = set()
        if not any(tb.done() for tb in dead):
            return
        super()._retire_finished(now)
        # Retirement compacted the block warp lists (and possibly
        # admitted new blocks, whose _place insorted them against
        # stale positions): renumber and restore sorted awake lists.
        self._renumber()
        for pb_index, awake in enumerate(self._awake):
            pruned = [w for w in awake if not w.done]
            pruned.sort(key=_POS)
            self._awake[pb_index] = pruned

    # -- wake plumbing --------------------------------------------------

    def _enter_awake(self, warp: _WarpRun) -> None:
        """Admit ``warp`` to the scan of the current processed cycle."""
        if warp.done:
            return
        if warp.wake_at > self._now:
            warp.wake_at = self._now
        insort(self._awake[warp.pb], warp, key=_POS)

    def _wake_list(self, waiters: list[_WarpRun]) -> None:
        """Hook installed on queue channels and barriers: an event that
        can unblock every registered waiter just fired."""
        drained = waiters[:]
        waiters.clear()
        self._tel_wakes += len(drained)
        immediate = self._inf_pollable
        scan_pb = self._scan_pb
        scan_pos = self._scan_pos
        pending = self._pending_wakes
        for warp in drained:
            if warp.done:
                continue
            if immediate and (
                warp.pb > scan_pb
                or (warp.pb == scan_pb and warp.pos > scan_pos)
            ):
                # The reference would poll this warp later this very
                # cycle and see the event.
                self._enter_awake(warp)
            else:
                pending.append(warp)

    def _register_block(self, warp: _WarpRun) -> None:
        """Park a warp whose wake is unknown on the queue/barrier that
        must change for it to make progress.

        Called synchronously with the failed ``_can_issue``, so the
        first infinite condition found here is the one that blocked
        the poll (same evaluation order).
        """
        instr = warp.current()
        if instr is None:  # defensive: _can_issue marks these done
            warp.done = True
            self._dead_tbs.add(warp.tb)
            return
        hook = self._wake_list
        if instr.queue_pop is not None:
            chan = warp.tb.queues.channel(instr.queue_pop, warp.slice_id)
            if chan.head_ready_time() is None:
                chan.wake_hook = hook
                chan.empty_waiters.append(warp)
                self._tel_reg_queue_empty += 1
                return
        if instr.queue_push is not None:
            chan = warp.tb.queues.channel(instr.queue_push, warp.slice_id)
            if not chan.can_push():
                chan.wake_hook = hook
                chan.full_waiters.append(warp)
                self._tel_reg_queue_full += 1
                return
        if instr.opcode is Opcode.BAR_WAIT:
            barrier = warp.tb.barriers.arrive_wait(instr.barrier_id)
            if barrier.wait_pass_time(warp.key) == INFINITY:
                barrier.wake_hook = hook
                barrier.waiters.append(warp)
                self._tel_reg_barrier += 1
                return
        if instr.opcode is Opcode.BAR_SYNC:
            barrier = warp.tb.barriers.sync(instr.barrier_id)
            if barrier.pass_time(warp.key) == INFINITY:
                barrier.wake_hook = hook
                barrier.waiters.append(warp)
                self._tel_reg_barrier += 1
                return
        # No modelled condition is infinite right now (cannot happen
        # today: registration is synchronous with the failed poll).
        # Fall back to re-poll-after-progress so the warp is not lost.
        self._pending_wakes.append(warp)

    def _park(
        self, warp: _WarpRun, warp_wake: float, now: float,
        keep: list[_WarpRun],
    ) -> None:
        """Route a blocked warp to where its wake will come from."""
        if warp.done:
            self._dead_tbs.add(warp.tb)
        elif warp_wake == INFINITY:
            self._register_block(warp)
        elif warp_wake <= now + 1.0:
            keep.append(warp)  # due again at the next processed cycle
        else:
            self._heap.push(warp_wake, warp)

    # -- steal-pass hooks ----------------------------------------------

    def _post_steal_issue(self, warp: _WarpRun) -> None:
        if warp.done:
            self._dead_tbs.add(warp.tb)

    def _post_steal_block(self, warp: _WarpRun) -> None:
        # A loser re-checked at steal time found its eligibility gone
        # (an earlier issue this cycle consumed the entry or space).
        # It sits in its block's awake list; re-route it like the scan
        # would have.
        warp_wake = warp.wake_at
        if warp_wake != INFINITY and warp_wake <= self._now + 1.0:
            return  # stays awake, polled next cycle either way
        awake = self._awake[warp.pb]
        for index, entry in enumerate(awake):
            if entry is warp:
                del awake[index]
                break
        if warp_wake == INFINITY:
            self._register_block(warp)
        else:
            self._heap.push(warp_wake, warp)

    # -- main loop ------------------------------------------------------

    def run(self) -> SMStats:
        now = 0.0
        self._admit(now)
        guard = 0
        prof = self.profiler
        heap = self._heap
        awake = self._awake
        blocks = self.config.processing_blocks
        idle = self._idle_pbs
        losers = self._losers
        tma = self.tma
        while self._resident or self._pending:
            guard += 1
            if guard > 200_000_000:
                raise SimulationError("simulation exceeded cycle guard")
            self._now = now
            if prof is not None:
                prof.now = now
            # Pre-scan events (TMA pushes/arrivals) are visible to
            # every warp polled this cycle.
            self._scan_pb = -1
            self._scan_pos = _AFTER_ALL
            tma.advance(now)
            for warp in heap.pop_due(now):
                self._enter_awake(warp)
            if prof is not None:
                prof.record_heap_depth(now, len(heap))
            if self._buffer:
                self._tel_buffered += len(self._buffer)
                for warp in self._buffer:
                    self._enter_awake(warp)
                self._buffer.clear()
            issued_any = False
            wake = INFINITY
            idle.clear()
            losers.clear()
            for pb_index in range(blocks):
                if awake[pb_index]:
                    self._scan_pb = pb_index
                    result = self._scan_issue(pb_index, now, losers)
                    if result is True:
                        issued_any = True
                        continue
                    if result < wake:
                        wake = result
                idle.append(pb_index)
            # Steal-pass events are next-cycle for everyone.
            self._scan_pb = blocks
            self._scan_pos = _AFTER_ALL
            if losers:
                unconsumed = 0
                if idle:
                    stole, unconsumed = self._steal_issue(idle, losers, now)
                    issued_any |= stole
                for _key, _tie, warp in losers[unconsumed:]:
                    self._note_stall(warp, now, StallCause.ISSUE_PORT)
                losers.clear()
            self._retire_finished(now)
            if not self._resident and not self._pending:
                break
            # Progress gate: identical to the reference's re-arm
            # condition, evaluated at the same point (post-retire).
            if issued_any or tma.busy():
                self._inf_pollable = True
                if self._pending_wakes:
                    self._buffer.extend(self._pending_wakes)
                    self._pending_wakes.clear()
            else:
                self._inf_pollable = False
            if issued_any:
                now += 1.0
            else:
                # Jump candidates: this cycle's scans (sleepers parked
                # earlier keep contributing via the heap), never
                # pending/buffered wakes — the reference's ``wake`` is
                # equally blind to warps it did not poll this cycle.
                wake = min(wake, heap.next_time(), tma.next_event_time())
                if wake == INFINITY:
                    self._raise_deadlock(now)
                target = max(now + 1.0, math.ceil(wake))
                skipped = target - now - 1.0
                self._tel_jumps += 1
                self._tel_skipped += skipped
                self._tel_skip_counts[
                    bisect_left(CYCLES_BUCKETS, skipped)
                ] += 1
                now = target
        self.stats.cycles = max(now, self.memory.drain_time())
        self._tel_cycles = guard
        if prof is not None:
            prof.finalize(self.stats.cycles)
        self._harvest_telemetry()
        return self.stats

    def _harvest_telemetry(self) -> None:
        super()._harvest_telemetry()
        if not TELEMETRY.enabled:
            return
        heap = self._heap
        counter = TELEMETRY.counter
        counter("repro_eventcore_heap_pushes_total",
                help="Warps put to sleep on the wakeup heap"
                ).inc(heap.pushes)
        counter("repro_eventcore_heap_pops_total",
                help="Timed warp wakeups popped from the heap"
                ).inc(heap.pops)
        TELEMETRY.histogram(
            "repro_eventcore_heap_max_depth",
            bounds=DEPTH_BUCKETS,
            help="Peak wakeup-heap depth per simulation",
        ).observe(float(heap.max_depth))
        for kind, count in (
            ("heap_wake", heap.pops),
            ("notify_wake", self._tel_wakes),
            ("buffered_wake", self._tel_buffered),
            ("sleep_heap", heap.pushes),
            ("sleep_queue_empty", self._tel_reg_queue_empty),
            ("sleep_queue_full", self._tel_reg_queue_full),
            ("sleep_barrier", self._tel_reg_barrier),
        ):
            counter("repro_eventcore_events_total", {"type": kind},
                    help="Warp sleep/wake events by type").inc(count)
        skip = TELEMETRY.histogram(
            "repro_eventcore_skip_span_cycles",
            bounds=CYCLES_BUCKETS,
            help="Simulated cycles elided per clock jump",
        )
        for index, count in enumerate(self._tel_skip_counts):
            skip.counts[index] += count
        skip.sum += self._tel_skipped
        skip.count += self._tel_jumps

    def _scan_issue(
        self, pb_index: int, now: float, losers: list,
    ) -> bool | float:
        """The awake-warps-only mirror of ``SMSimulator._issue_pb``.

        Scans the block's awake warps in position order — the exact
        subsequence of the reference scan whose polls are not no-ops —
        and re-parks every warp that blocked.  Returns True on issue,
        else the earliest finite wake seen (for the clock jump).
        """
        best: _WarpRun | None = None
        best_key = None
        wake = INFINITY
        greedy = self._greedy[pb_index]
        # Baseline hardware is pipeline-agnostic: plain GTO order.
        key_fn = self._key_fn if self._pipeline_aware else _GTO_KEY
        queue_bits = self._queue_bits
        eligible = self._eligible
        eligible.clear()
        # Live list: same-cycle wakes with a later position insort
        # into it mid-scan and are reached by the index loop.
        awake = self._awake[pb_index]
        keep: list[_WarpRun] = []
        index = 0
        while index < len(awake):
            warp = awake[index]
            index += 1
            if warp.done:
                self._dead_tbs.add(warp.tb)
                continue
            if warp.wake_at > now:
                # Not due yet (defensive; next processed cycle is
                # always <= any parked wake).  Same contribution as
                # the reference's skip.
                wake = min(wake, warp.wake_at)
                self._park(warp, warp.wake_at, now, keep)
                continue
            self._scan_pos = warp.pos
            can, warp_wake, cause = self._can_issue(warp, now)
            if not can:
                if cause is not None:
                    self._note_stall(warp, now, cause)
                warp.wake_at = warp_wake
                wake = min(wake, warp_wake)
                self._park(warp, warp_wake, now, keep)
                continue
            keep.append(warp)
            ready = full = False
            if queue_bits:
                # Inlined queue-scoreboard scan; see SMSimulator._issue_pb.
                for chan in warp.in_channels:
                    entries = chan._entries
                    if entries and entries[0] <= now:
                        ready = True
                    if len(entries) + chan.reserved >= chan.capacity:
                        full = True
            key = key_fn(warp.key, warp.pipe_stage_id, ready, full,
                         warp.last_issued, warp.age, greedy)
            eligible.append((key, warp))
            if best is None or key < best_key:
                best, best_key = warp, key
        self._awake[pb_index] = keep
        self._tel_polls += index
        # Winner execution: events become visible to later blocks this
        # cycle, to this block (and earlier ones) next cycle.
        self._scan_pos = _AFTER_ALL
        if best is None:
            return wake
        for key, warp in eligible:
            if warp is not best:
                losers.append((key, warp.key, warp))
        eligible.clear()
        self._execute(best, now)
        self._greedy[pb_index] = best.key
        if best.done:
            self._dead_tbs.add(best.tb)
        return True
