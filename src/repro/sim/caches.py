"""Sector caches and bandwidth servers.

Two building blocks for the memory system:

* :class:`SectorCache` — a set-associative cache of 32-byte sectors with
  LRU replacement, used for L1 and the per-SM L2 slice.
* :class:`BandwidthServer` — a deterministic single-server queue: each
  unit of work occupies the server for ``1 / rate`` cycles, so queueing
  delay emerges naturally under load and utilization is work divided by
  elapsed busy window.
"""

from __future__ import annotations

from repro.errors import SimulationError


class SectorCache:
    """Set-associative LRU sector cache.

    Sectors are integer ids (word address // 8).  ``access`` returns
    True on hit and fills on miss.
    """

    def __init__(self, num_sectors: int, assoc: int) -> None:
        if num_sectors <= 0 or assoc <= 0:
            raise SimulationError("cache must have positive size and assoc")
        self.assoc = assoc
        self.num_sets = max(1, num_sectors // assoc)
        # Per-set dict: sector -> last-use stamp (dicts preserve order,
        # but an explicit stamp keeps LRU exact under re-touch).
        self._sets: dict[int, dict[int, int]] = {}
        self._stamp = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def access(self, sector: int) -> bool:
        """Touch ``sector``; returns hit/miss and fills on miss."""
        self._stamp += 1
        index = sector % self.num_sets
        entries = self._sets.get(index)
        if entries is None:
            entries = {}
            self._sets[index] = entries
        if sector in entries:
            entries[sector] = self._stamp
            self.hits += 1
            return True
        self.misses += 1
        if len(entries) >= self.assoc:
            victim = min(entries, key=entries.get)
            del entries[victim]
            self.evictions += 1
        entries[sector] = self._stamp
        return False

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        total = self.accesses
        return self.hits / total if total else 0.0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0


class BandwidthServer:
    """Deterministic queue with a fixed service rate.

    ``submit(now, work)`` returns the time service *completes* (without
    the downstream latency, which the caller adds).  The server never
    reorders: requests occupy it in arrival order.
    """

    def __init__(self, rate_per_cycle: float, name: str = "") -> None:
        if rate_per_cycle <= 0:
            raise SimulationError(f"bandwidth server {name!r} needs rate > 0")
        self.rate = rate_per_cycle
        self.name = name
        self._free_at = 0.0
        self.total_work = 0.0
        self.first_use: float | None = None
        self.last_use = 0.0
        # Token-wait telemetry (simulated cycles spent queued behind
        # earlier work): deterministic, harvested at end of run.
        self.waits = 0
        self.wait_cycles = 0.0

    def submit(self, now: float, work: float = 1.0) -> float:
        """Occupy the server for ``work / rate`` cycles starting at now."""
        start = self._free_at
        if start > now:
            self.waits += 1
            self.wait_cycles += start - now
        else:
            start = now
        finish = start + work / self.rate
        self._free_at = finish
        self.total_work += work
        if self.first_use is None:
            self.first_use = now
        self.last_use = finish
        return finish

    @property
    def free_at(self) -> float:
        """Time the server finishes all currently queued work."""
        return self._free_at

    def queue_delay(self, now: float) -> float:
        """How long a request arriving now would wait before service."""
        return max(0.0, self._free_at - now)

    def utilization(self, elapsed: float) -> float:
        """Fraction of peak bandwidth used over ``elapsed`` cycles."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.total_work / (self.rate * elapsed))
