"""Counts-based energy proxy.

The paper argues WASP-TMA "generates accesses more efficiently, reducing
energy consumption" (Section III-E) but reports no energy numbers; this
model quantifies the claim with standard per-event energy coefficients
(instruction issue/decode/operand access, register-file accesses, SMEM,
L2 and DRAM transfers).  Values are in picojoules per warp-event, scaled
from published 40nm/16nm GPU energy studies — the absolute scale is
indicative, the *relative* savings are the point.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.opcodes import InstrCategory
from repro.sim.gpu import SimResult


@dataclass(frozen=True)
class EnergyModel:
    """Per-event energy coefficients (picojoules)."""

    issue_pj: float = 20.0           # fetch/decode/schedule, per instr
    alu_pj: float = 10.0             # INT/FP execution, per warp instr
    tensor_pj: float = 60.0          # HMMA, per warp instr
    regfile_access_pj: float = 5.0   # per operand read/write (warp-wide)
    smem_word_pj: float = 1.0        # per 4-byte SMEM word moved
    l2_sector_pj: float = 50.0       # per 32-byte L2 transfer
    dram_sector_pj: float = 300.0    # per 32-byte DRAM transfer
    tma_vector_pj: float = 8.0       # offload engine per generated vector


@dataclass
class EnergyBreakdown:
    """Energy per component for one simulated kernel (picojoules)."""

    issue: float
    execute: float
    register_file: float
    smem: float
    l2: float
    dram: float
    tma: float

    @property
    def total(self) -> float:
        return (self.issue + self.execute + self.register_file
                + self.smem + self.l2 + self.dram + self.tma)

    def as_dict(self) -> dict[str, float]:
        return {
            "issue": self.issue,
            "execute": self.execute,
            "register_file": self.register_file,
            "smem": self.smem,
            "l2": self.l2,
            "dram": self.dram,
            "tma": self.tma,
            "total": self.total,
        }


def estimate_energy(
    result: SimResult,
    l2_sectors: int,
    dram_sectors: int,
    smem_words: int,
    tma_vectors: int = 0,
    model: EnergyModel | None = None,
) -> EnergyBreakdown:
    """Energy estimate from a timing result plus memory-system counts.

    The caller supplies the memory counters (available from
    :class:`~repro.sim.memory.MemorySystem` stats) because
    :class:`SimResult` carries utilizations, not raw counts.
    """
    m = model or EnergyModel()
    issued = result.issued_total
    compute_instrs = result.issued_by_category.get(
        InstrCategory.COMPUTE, 0
    )
    issue_energy = issued * m.issue_pj
    execute_energy = compute_instrs * m.alu_pj
    # Every issued instruction makes ~3 register-file operand accesses.
    regfile_energy = issued * 3 * m.regfile_access_pj
    return EnergyBreakdown(
        issue=issue_energy,
        execute=execute_energy,
        register_file=regfile_energy,
        smem=smem_words * m.smem_word_pj,
        l2=l2_sectors * m.l2_sector_pj,
        dram=dram_sectors * m.dram_sector_pj,
        tma=tma_vectors * m.tma_vector_pj,
    )


def simulate_with_energy(traces, config, model: EnergyModel | None = None):
    """Time a kernel and attach an energy breakdown.

    Returns ``(SimResult, EnergyBreakdown)``.
    """
    from repro.sim.gpu import _summarize, make_simulator

    sim = make_simulator(config, traces)
    stats = sim.run()
    result = _summarize(sim, stats)
    mem = sim.memory.stats
    l2_transfers = mem.total_sectors - mem.l1_hits
    breakdown = estimate_energy(
        result,
        l2_sectors=max(0, l2_transfers),
        dram_sectors=mem.dram_accesses,
        smem_words=mem.smem_words,
        tma_vectors=sim.tma.vectors_issued,
        model=model,
    )
    return result, breakdown
