"""GPU configuration (paper Table III: NVArchSim A100+).

All bandwidths are expressed *per SM*: the chip's L2 and DRAM bandwidth
divided by the SM count, which is how a single-SM model sees the shared
memory system when every SM is active.  A100 reference points: ~5 TB/s
L2 and ~1.56 TB/s HBM2 at 1.41 GHz over 108 SMs give roughly 1.0 and
0.35 32-byte sectors per cycle per SM.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.errors import SimulationError


# SchedulingPolicy lives with the policy implementations in
# repro.core.scheduling; re-exported here because it is part of the GPU
# configuration surface.
from repro.core.scheduling import SchedulingPolicy  # noqa: E402


class QueueImpl(enum.Enum):
    """Where inter-stage queues live."""

    RFQ = "rfq"    # WASP register-file queues (III-C)
    SMEM = "smem"  # software queues in shared memory (compiler-only mode)


@dataclass(frozen=True)
class WaspFeatures:
    """Which WASP hardware features the simulated GPU provides."""

    explicit_naming: bool = False       # III-A (prerequisite for the rest)
    group_pipeline_mapping: bool = False  # III-B warp mapping
    per_stage_registers: bool = False   # III-B register allocation
    queue_impl: QueueImpl = QueueImpl.SMEM  # III-C
    pipeline_scheduling: bool = False   # III-D
    wasp_tma: bool = False              # III-E
    scheduling_policy: SchedulingPolicy = SchedulingPolicy.GTO

    @staticmethod
    def baseline() -> "WaspFeatures":
        """Modern GPU: no WASP hardware; queues fall back to SMEM."""
        return WaspFeatures()

    @staticmethod
    def full() -> "WaspFeatures":
        """The complete WASP GPU of the paper's headline configuration."""
        return WaspFeatures(
            explicit_naming=True,
            group_pipeline_mapping=True,
            per_stage_registers=True,
            queue_impl=QueueImpl.RFQ,
            pipeline_scheduling=True,
            wasp_tma=True,
            scheduling_policy=SchedulingPolicy.FULL_READY_PRODUCER,
        )


@dataclass(frozen=True)
class ServiceRates:
    """The service constants the timing model is built from.

    One flat, read-only view of every latency and token-bucket rate the
    simulator's memory system, TMA engine, and issue logic use — the
    static performance model (``repro.analysis.perfmodel``) derives its
    bounds from this same structure, so the two can never disagree on
    what the machine is.  Latencies are cycles; bandwidths are
    sectors/words/vectors per cycle per SM.
    """

    # Issue
    issue_slots: int          # processing blocks = peak instrs/cycle
    int_latency: int
    fp_latency: int
    tensor_latency: int
    # Memory hierarchy
    smem_latency: int
    l1_latency: int
    l2_latency: int
    dram_latency: int
    l2_sectors_per_cycle: float
    dram_sectors_per_cycle: float
    smem_words_per_cycle: float
    # Offload engine
    tma_vectors_per_cycle: float
    # Structural limits that bound concurrency
    max_outstanding_loads_per_warp: int
    rfq_size: int


@dataclass(frozen=True)
class GPUConfig:
    """One SM plus its share of the chip-level memory system."""

    # SM organization (Table III)
    processing_blocks: int = 4
    warp_slots_per_pb: int = 16          # 64 warps per SM
    registers_per_sm: int = 65536        # 256 KB of 4-byte registers
    smem_capacity_words: int = 41984     # 164 KB usable SMEM
    max_resident_tbs: int = 32

    # Latencies (cycles)
    int_latency: int = 4
    fp_latency: int = 4
    tensor_latency: int = 16
    smem_latency: int = 25
    l1_latency: int = 32
    l2_latency: int = 200
    dram_latency: int = 400

    # Bandwidth, per SM
    l2_sectors_per_cycle: float = 1.0    # ~5 TB/s chip L2
    dram_sectors_per_cycle: float = 0.35  # ~1.56 TB/s HBM2
    smem_words_per_cycle: int = 32       # 128 B/cycle

    # Caches (sectors of 32 B)
    l1_sectors: int = 4096               # 128 KB L1 data
    l1_assoc: int = 4
    l2_sectors: int = 12288              # ~384 KB L2 slice per SM
    l2_assoc: int = 8

    # Miscellaneous structural limits
    max_outstanding_loads_per_warp: int = 12
    tma_vectors_per_cycle: float = 1.0   # offload engine issue rate
    rfq_size: int = 32                   # entries per warp channel (Fig 18)
    max_stages: int = 16

    features: WaspFeatures = field(default_factory=WaspFeatures.baseline)

    # Which SM core loop times the traces.  "event" is the
    # event-skipping core (repro.sim.sm_event): cycle-exact with the
    # reference, but only awake warps pay per cycle.  "reference" keeps
    # the original cycle-stepped loop (repro.sim.sm) as an escape hatch
    # and differential pair; both produce bit-identical results (the
    # contract enforced by repro.sim.differential and CI).
    core: str = "event"

    # Opt-in vector-clock SMEM race sanitizer: the functional run
    # shadows every shared-memory access and reports cross-stage pairs
    # no barrier/queue edge ordered (repro.fexec.sanitizer).  Races
    # land on SimResult.sanitizer_races; ``repro racediff``
    # cross-checks them against the static happens-before engine.
    sanitize: bool = False

    def __post_init__(self) -> None:
        if self.processing_blocks <= 0 or self.warp_slots_per_pb <= 0:
            raise SimulationError("SM must have processing blocks and slots")
        if self.l2_sectors_per_cycle <= 0 or self.dram_sectors_per_cycle <= 0:
            raise SimulationError("bandwidths must be positive")
        if self.core not in ("event", "reference"):
            raise SimulationError(
                f"unknown simulator core {self.core!r}: "
                "expected 'event' or 'reference'"
            )

    def with_core(self, core: str) -> "GPUConfig":
        """The same GPU timed by a different SM core loop."""
        return replace(self, core=core)

    # -- convenience constructors ----------------------------------------

    def with_features(self, features: WaspFeatures) -> "GPUConfig":
        return replace(self, features=features)

    def scale_bandwidth(self, factor: float) -> "GPUConfig":
        """The Figure 20 knob: scale L2 and DRAM bandwidth together."""
        return replace(
            self,
            l2_sectors_per_cycle=self.l2_sectors_per_cycle * factor,
            dram_sectors_per_cycle=self.dram_sectors_per_cycle * factor,
        )

    def service_rates(self) -> ServiceRates:
        """The flat latency/bandwidth view (see :class:`ServiceRates`)."""
        return ServiceRates(
            issue_slots=self.processing_blocks,
            int_latency=self.int_latency,
            fp_latency=self.fp_latency,
            tensor_latency=self.tensor_latency,
            smem_latency=self.smem_latency,
            l1_latency=self.l1_latency,
            l2_latency=self.l2_latency,
            dram_latency=self.dram_latency,
            l2_sectors_per_cycle=self.l2_sectors_per_cycle,
            dram_sectors_per_cycle=self.dram_sectors_per_cycle,
            smem_words_per_cycle=float(self.smem_words_per_cycle),
            tma_vectors_per_cycle=self.tma_vectors_per_cycle,
            max_outstanding_loads_per_warp=(
                self.max_outstanding_loads_per_warp
            ),
            rfq_size=self.rfq_size,
        )

    @property
    def warps_per_sm(self) -> int:
        return self.processing_blocks * self.warp_slots_per_pb

    @property
    def registers_per_pb(self) -> int:
        return self.registers_per_sm // self.processing_blocks


def baseline_a100() -> GPUConfig:
    """The paper's baseline: A100+ with CUTLASS-style warp specialization."""
    return GPUConfig()


def wasp_gpu(rfq_size: int = 32) -> GPUConfig:
    """The full WASP GPU configuration."""
    return replace(GPUConfig(), features=WaspFeatures.full(), rfq_size=rfq_size)
