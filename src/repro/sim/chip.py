"""Chip-level execution model: many SMs sharing L2/DRAM bandwidth.

The detailed model simulates one SM with per-SM shares of chip
bandwidth (Table III's modelling choice).  This wrapper scales that to a
full chip launch: a grid of thread blocks is distributed round-robin
over ``num_sms`` identical SMs; because the detailed model already
charges each SM its bandwidth share, chip time is the slowest SM's time
(plus a tail when the grid does not divide evenly).

For homogeneous grids (every thread block runs the same trace shape),
``estimate_chip_time`` avoids simulating every SM by timing one
representative SM with the largest per-SM block count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.fexec.trace import KernelTrace
from repro.sim.config import GPUConfig
from repro.sim.gpu import SimResult, simulate_kernel


@dataclass
class ChipResult:
    """Chip-level launch estimate."""

    num_sms_used: int
    blocks_per_sm: int
    sm_result: SimResult

    @property
    def cycles(self) -> float:
        return self.sm_result.cycles


def partition_blocks(
    num_blocks: int, num_sms: int
) -> list[list[int]]:
    """Round-robin block indices over SMs (the GPU work distributor)."""
    if num_blocks <= 0 or num_sms <= 0:
        raise SimulationError("need positive blocks and SMs")
    assignment: list[list[int]] = [[] for _ in range(min(num_sms,
                                                         num_blocks))]
    for block in range(num_blocks):
        assignment[block % len(assignment)].append(block)
    return assignment


def estimate_chip_time(
    traces: list[KernelTrace],
    config: GPUConfig,
    num_sms: int = 108,
    grid_blocks: int | None = None,
) -> ChipResult:
    """Estimate a full-chip launch from per-block traces.

    ``grid_blocks`` (default: ``len(traces)``) is the total grid size;
    when it exceeds the trace count the trace list is treated as a
    representative sample and tiled.  The representative SM runs
    ``ceil(grid / num_sms)`` blocks.
    """
    if not traces:
        raise SimulationError("no traces")
    grid = grid_blocks if grid_blocks is not None else len(traces)
    per_sm = max(1, math.ceil(grid / num_sms))
    sm_traces = [traces[i % len(traces)] for i in range(per_sm)]
    result = simulate_kernel(sm_traces, config)
    return ChipResult(
        num_sms_used=min(num_sms, grid),
        blocks_per_sm=per_sm,
        sm_result=result,
    )
