"""The SM core loop: cycle-stepped issue with event skipping.

Each processing block issues at most one instruction per cycle from a
ready warp chosen by the active scheduling policy.  Issue is
work-conserving: thread blocks are placed starting from the least-
loaded processing block (so a warp count that does not divide P cannot
strand a permanently empty block), and a block whose own warps are all
blocked lends its issue slot to a warp that lost arbitration on
another block — a slot never idles while an eligible warp exists
anywhere on the SM.  Warps block on register scoreboards, queue
occupancy, barriers, and the per-warp outstanding-load limit; every
blocking condition resolves either to a known future wake time (memory
completions are computed eagerly) or to "another warp must act", in
which case the blocked warp registers itself on the queue/barrier and
is woken by the unblocking event.  When no warp can issue, time skips
to the earliest known wake.

Stall attribution (``repro.profiling``): every active warp-cycle is
charged either to an issue or to one :class:`StallCause`.  Because the
loop skips idle time, attribution is interval-based and lazy — each
warp carries an accounting mark (``prof_mark``) and the cause in force
since that mark (``prof_cause``); the span is charged to ``SMStats``
only when the cause *changes* or the warp issues, so the always-on cost
is one enum comparison per issue attempt.  The optional
:class:`~repro.profiling.PipelineProfiler` additionally records an
event trace and queue/memory timelines; all its hook sites are guarded
by ``is not None`` checks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

from repro.core.mapping import map_warps, rotate_mapping
from repro.core.scheduling import (
    SchedulingPolicy, compiled_priority, needs_queue_bits,
)
from repro.core.specs import ThreadBlockSpec
from repro.errors import DeadlockError, SimulationError
from repro.fexec.trace import DynamicInstr, KernelTrace
from repro.isa.opcodes import FuncUnit, InstrCategory, Opcode
from repro.profiling.profiler import PipelineProfiler
from repro.profiling.stalls import StallCause
from repro.sim.barriers import INFINITY, BarrierFile
from repro.sim.config import GPUConfig, QueueImpl
from repro.sim.memory import MemorySystem
from repro.sim.occupancy import Occupancy, compute_occupancy
from repro.sim.queues import QueueFile
from repro.sim.results import SMStats
from repro.sim.tma import TmaEngine
from repro.telemetry.registry import TELEMETRY

_TENSOR_FP_UNITS = (FuncUnit.TENSOR, FuncUnit.FP)
# Pipeline-agnostic arbitration (baseline hardware): plain GTO order
# regardless of the configured policy.
_GTO_KEY = compiled_priority(SchedulingPolicy.GTO)
_SMEM_POP_EXTRA = 1   # LDS + address handled as one synthetic slot + LDS cost
_SMEM_PUSH_EXTRA = 2  # STS + buffer bookkeeping


# eq=False: thread blocks and warps are identity objects (the event
# core keeps them in sets and removes them from lists by identity);
# field-wise comparison would be wrong as well as slow.
@dataclass(eq=False)
class _ResidentTB:
    """One thread block currently executing on the SM."""

    tb_index: int
    trace: KernelTrace
    barriers: BarrierFile
    queues: QueueFile
    warps: list["_WarpRun"] = field(default_factory=list)

    def done(self) -> bool:
        return all(w.done for w in self.warps)


@dataclass(eq=False)
class _WarpRun:
    """Timing state of one warp."""

    key: int
    tb: _ResidentTB
    instrs: list[DynamicInstr]
    pipe_stage_id: int
    slice_id: int
    pb: int
    age: int
    pc: int = 0
    done: bool = False
    scoreboard: dict[int, float] = field(default_factory=dict)
    outstanding: list[float] = field(default_factory=list)
    last_issued: float = -1.0
    wake_at: float = 0.0
    pending_extra: int = 0
    sync_marked: bool = False
    async_copy_done: float = 0.0  # LDGSTS data-landing fence for arrives
    # Stall attribution: time accounted so far and the cause in force
    # since then (None while the warp is issuing/eligible).
    prof_mark: float = 0.0
    prof_cause: StallCause | None = None
    # Index of this warp within its processing block's warp list —
    # i.e. its place in the reference core's arbitration scan order.
    # Maintained by the event core (repro.sim.sm_event), which wakes
    # warps out of order and must re-establish the scan order; the
    # reference core iterates the list directly and never reads it.
    pos: int = 0
    # The warp's incoming queue channels (queues whose dst_stage is
    # this warp's stage, at this warp's slice), resolved once at
    # placement so the scheduler's per-cycle scoreboard scan skips the
    # spec walk and channel lookups.
    in_channels: tuple = ()

    def current(self) -> DynamicInstr | None:
        if self.pc < len(self.instrs):
            return self.instrs[self.pc]
        return None


class SMSimulator:
    """Simulates one SM executing the thread blocks of one kernel."""

    #: Metric-family prefix for this core's harvested telemetry
    #: (``repro_<subsystem>_...``); the event core overrides it.
    _tel_subsystem = "refcore"

    def __init__(
        self,
        config: GPUConfig,
        traces: list[KernelTrace],
        occupancy: Occupancy | None = None,
        profiler: PipelineProfiler | None = None,
    ) -> None:
        if not traces:
            raise SimulationError("no thread blocks to simulate")
        self.config = config
        self.traces = traces
        self.profiler = profiler
        self.memory = MemorySystem(config)
        self.tma = TmaEngine(config, self.memory)
        self.stats = SMStats()
        # The memory system records the L1/L2/DRAM service mix for
        # the event trace (covers TMA traffic too); the Figure-3
        # utilization timeline keeps its issue-time semantics below.
        self.memory.profiler = profiler
        first = traces[0]
        spec = first.tb_spec
        self.spec: ThreadBlockSpec | None = spec
        self.occupancy = occupancy or compute_occupancy(
            config,
            spec,
            num_warps=first.num_warps,
            program_registers=first.program_registers,
            smem_words=first.smem_words,
            warp_width=first.warp_width,
        )
        # Hot-loop constants, resolved once (the config is frozen).
        features = config.features
        self._policy = features.scheduling_policy
        self._pipeline_aware = features.pipeline_scheduling
        self._smem_queue = features.queue_impl is QueueImpl.SMEM
        self._max_loads = config.max_outstanding_loads_per_warp
        self._int_latency = config.int_latency
        self._fp_latency = config.fp_latency
        self._tensor_latency = config.tensor_latency
        self._key_fn = compiled_priority(self._policy)
        self._queue_bits = (
            self._pipeline_aware and needs_queue_bits(self._policy)
        )
        self._pending = list(traces)
        self._resident: list[_ResidentTB] = []
        self._pbs: list[list[_WarpRun]] = [
            [] for _ in range(config.processing_blocks)
        ]
        self._greedy: list[int | None] = [None] * config.processing_blocks
        self._next_key = 0
        self._next_tb = 0
        self._age = 0
        # Warps blocked on conditions another agent must clear.
        self._queue_block: dict[tuple[int, int, int, str], list[_WarpRun]] = {}
        # Reusable scratch for per-cycle arbitration (no allocation in
        # the issue loop).
        self._eligible: list[tuple[Any, _WarpRun]] = []
        self._losers: list[tuple[Any, int, _WarpRun]] = []
        self._idle_pbs: list[int] = []
        # Raw telemetry tallies (plain int adds on the hot path; the
        # metrics registry sees them only in _harvest_telemetry at end
        # of run, and only when telemetry is enabled — DESIGN.md §7).
        self._tel_cycles = 0      # processed (non-skipped) cycles
        self._tel_polls = 0       # warp issue-scan visits
        self._tel_jumps = 0       # no-issue clock jumps
        self._tel_skipped = 0.0   # cycles elided by those jumps

    # -- residency ----------------------------------------------------------

    def _admit(self, now: float) -> None:
        while self._pending and (
            len(self._resident) < self.occupancy.max_resident_tbs
        ):
            trace = self._pending[0]
            if not self._fits_in_slots(trace):
                break
            self._pending.pop(0)
            self._place(trace, now)

    def _mapping_for(self, trace: KernelTrace) -> dict[int, int]:
        """Warp→PB mapping for one admitted block, balance-rotated.

        The raw mappers start every thread block at processing block 0;
        rotating to the currently least-loaded block keeps the issue
        slots work-conserving when the warp count does not divide P
        (see :func:`repro.core.mapping.rotate_mapping`).
        """
        mapping = map_warps(
            trace.tb_spec,
            trace.num_warps,
            self.config.processing_blocks,
            self.config.features.group_pipeline_mapping,
        )
        loads = [len(pb) for pb in self._pbs]
        offset = loads.index(min(loads))
        return rotate_mapping(
            mapping, offset, self.config.processing_blocks
        )

    def _fits_in_slots(self, trace: KernelTrace) -> bool:
        mapping = self._mapping_for(trace)
        load: dict[int, int] = {}
        for pb in mapping.values():
            load[pb] = load.get(pb, 0) + 1
        for pb, extra in load.items():
            if len(self._pbs[pb]) + extra > self.config.warp_slots_per_pb:
                return False
        return True

    def _place(self, trace: KernelTrace, now: float) -> None:
        spec = trace.tb_spec
        expected = spec.barrier_expected if spec is not None else {}
        initial = spec.barrier_initial if spec is not None else {}
        capacities: dict[int, int] = {}
        if spec is not None:
            for queue in spec.queues:
                capacities[queue.queue_id] = self.config.rfq_size
        tb_index = self._next_tb
        tb = _ResidentTB(
            tb_index=tb_index,
            trace=trace,
            barriers=BarrierFile(
                trace.num_warps, expected, initial,
                profiler=self.profiler, tb_index=tb_index,
            ),
            queues=QueueFile(
                capacities, self.config.features.queue_impl,
                profiler=self.profiler, tb_index=tb_index,
            ),
        )
        self._next_tb += 1
        mapping = self._mapping_for(trace)
        for warp_trace in trace.warps:
            run = _WarpRun(
                key=self._next_key,
                tb=tb,
                instrs=warp_trace.instrs,
                pipe_stage_id=warp_trace.pipe_stage_id,
                slice_id=self._slice_of(spec, warp_trace.warp_id),
                pb=mapping[warp_trace.warp_id],
                age=self._age,
                wake_at=now,
                prof_mark=now,
            )
            self._next_key += 1
            self._age += 1
            if spec is not None and spec.queues:
                run.in_channels = tuple(
                    tb.queues.channel(queue.queue_id, run.slice_id)
                    for queue in spec.queues
                    if queue.dst_stage == run.pipe_stage_id
                )
            if not run.instrs:
                run.done = True
            if self.profiler is not None:
                self.profiler.register_warp(
                    tb.tb_index, run.key, run.pipe_stage_id
                )
            tb.warps.append(run)
            self._pbs[run.pb].append(run)
        self._resident.append(tb)

    @staticmethod
    def _slice_of(spec: ThreadBlockSpec | None, warp_id: int) -> int:
        if spec is None:
            return warp_id
        stage = spec.stage_of_warp(warp_id)
        return spec.warps_in_stage(stage).index(warp_id)

    def _retire_finished(self, now: float) -> None:
        finished = [tb for tb in self._resident if tb.done()]
        if not finished:
            return
        for tb in finished:
            self._resident.remove(tb)
            self.stats.tbs_completed += 1
            for pb_warps in self._pbs:
                pb_warps[:] = [w for w in pb_warps if w.tb is not tb]
        self._admit(now)

    # -- main loop ------------------------------------------------------

    def run(self) -> SMStats:
        now = 0.0
        self._admit(now)
        guard = 0
        prof = self.profiler
        while self._resident or self._pending:
            guard += 1
            if guard > 200_000_000:
                raise SimulationError("simulation exceeded cycle guard")
            if prof is not None:
                prof.now = now
            self.tma.advance(now)
            issued_any = False
            wake = INFINITY
            idle = self._idle_pbs
            losers = self._losers
            idle.clear()
            losers.clear()
            for pb_index in range(self.config.processing_blocks):
                result = self._issue_pb(pb_index, now, losers)
                if result is True:
                    issued_any = True
                else:
                    idle.append(pb_index)
                    if result < wake:
                        wake = result
            # Work conservation: a processing block whose own warps are
            # all blocked still has an issue slot this cycle; feed it
            # warps that lost arbitration elsewhere rather than letting
            # the slot idle while eligible work exists.
            if losers:
                unconsumed = 0
                if idle:
                    stole, unconsumed = self._steal_issue(idle, losers, now)
                    issued_any |= stole
                for _key, _tie, warp in losers[unconsumed:]:
                    self._note_stall(warp, now, StallCause.ISSUE_PORT)
                losers.clear()
            self._retire_finished(now)
            if not self._resident and not self._pending:
                break
            # Warps blocked on another agent (queue space/data, barrier
            # arrivals) carry infinite wakes; re-arm them for recheck as
            # long as something in the system is still making progress.
            if issued_any or self.tma.busy():
                self._rearm_infinite_waits(now + 1.0)
            if issued_any:
                now += 1.0
            else:
                wake = min(wake, self.tma.next_event_time())
                if wake == INFINITY:
                    self._raise_deadlock(now)
                target = max(now + 1.0, math.ceil(wake))
                self._tel_jumps += 1
                self._tel_skipped += target - now - 1.0
                now = target
        self.stats.cycles = max(now, self.memory.drain_time())
        self._tel_cycles = guard
        if prof is not None:
            prof.finalize(self.stats.cycles)
        self._harvest_telemetry()
        return self.stats

    # -- telemetry harvest ----------------------------------------------

    def _harvest_telemetry(self) -> None:
        """Fold this run's raw tallies into the global registry.

        Everything harvested here is a deterministic function of the
        simulated work (simulated-time waits, cache behaviour, issue
        counts), so the counters are jobs-invariant; wall-clock never
        enters.  Costs nothing when telemetry is disabled.
        """
        if not TELEMETRY.enabled:
            return
        sub = self._tel_subsystem
        counter = TELEMETRY.counter
        counter(f"repro_{sub}_runs_total",
                help="Completed SM simulations").inc()
        counter(f"repro_{sub}_processed_cycles_total",
                help="Main-loop iterations (non-skipped cycles)"
                ).inc(self._tel_cycles)
        counter(f"repro_{sub}_sim_cycles_total",
                help="Simulated cycles (incl. skipped)"
                ).inc(self.stats.cycles)
        counter(f"repro_{sub}_issued_total",
                help="Instructions issued"
                ).inc(self.stats.issued_total)
        counter(f"repro_{sub}_polls_total",
                help="Warp issue-scan visits"
                ).inc(self._tel_polls)
        counter(f"repro_{sub}_jumps_total",
                help="No-issue clock jumps"
                ).inc(self._tel_jumps)
        counter(f"repro_{sub}_skipped_cycles_total",
                help="Cycles elided by clock jumps"
                ).inc(self._tel_skipped)
        for level, cache in (("l1", self.memory.l1),
                             ("l2", self.memory.l2)):
            labels = {"level": level}
            counter("repro_cache_hits_total", labels,
                    help="Sector-cache hits").inc(cache.hits)
            counter("repro_cache_misses_total", labels,
                    help="Sector-cache misses").inc(cache.misses)
            counter("repro_cache_evictions_total", labels,
                    help="Sector-cache LRU evictions"
                    ).inc(cache.evictions)
        for server in (self.memory.l2_bw, self.memory.dram_bw,
                       self.memory.smem_bw):
            labels = {"server": server.name}
            counter("repro_cache_bw_token_waits_total", labels,
                    help="Requests that queued behind earlier work"
                    ).inc(server.waits)
            counter("repro_cache_bw_wait_cycles_total", labels,
                    help="Simulated cycles spent queued for bandwidth"
                    ).inc(server.wait_cycles)

    def _rearm_infinite_waits(self, recheck_at: float) -> None:
        for pb_warps in self._pbs:
            for warp in pb_warps:
                if not warp.done and warp.wake_at == INFINITY:
                    warp.wake_at = recheck_at

    def _raise_deadlock(self, now: float) -> None:
        detail = {}
        for tb in self._resident:
            for warp in tb.warps:
                if not warp.done:
                    instr = warp.current()
                    detail[(tb.tb_index, warp.key)] = (
                        repr(instr.opcode) if instr else "end"
                    )
        raise DeadlockError(
            f"SM deadlock at cycle {now}: blocked warps {detail}"
        )

    def _issue_pb(
        self,
        pb_index: int,
        now: float,
        losers: list[tuple[Any, int, _WarpRun]],
    ) -> Any:
        """Try to issue one instruction; True or the earliest wake time.

        Eligible warps that lose arbitration are appended to ``losers``
        (priority key, warp key, warp) so the caller can route them to
        processing blocks whose slot would otherwise idle this cycle;
        their ``ISSUE_PORT`` stall is noted there, only if they stay
        unissued after that second pass.
        """
        best: _WarpRun | None = None
        best_key = None
        wake = INFINITY
        greedy = self._greedy[pb_index]
        # Baseline hardware is pipeline-agnostic: plain GTO order.
        key_fn = self._key_fn if self._pipeline_aware else _GTO_KEY
        queue_bits = self._queue_bits
        eligible = self._eligible
        eligible.clear()
        self._tel_polls += len(self._pbs[pb_index])
        for warp in self._pbs[pb_index]:
            if warp.done or warp.wake_at > now:
                wake = min(wake, warp.wake_at if not warp.done else INFINITY)
                continue
            can, warp_wake, cause = self._can_issue(warp, now)
            if not can:
                if cause is not None:
                    self._note_stall(warp, now, cause)
                warp.wake_at = warp_wake
                wake = min(wake, warp_wake)
                continue
            ready = full = False
            if queue_bits:
                # Inlined QueueChannel.has_ready_data / is_full over the
                # warp's placement-time channel tuple: this runs once
                # per eligible warp per cycle.
                for chan in warp.in_channels:
                    entries = chan._entries
                    if entries and entries[0] <= now:
                        ready = True
                    if len(entries) + chan.reserved >= chan.capacity:
                        full = True
            key = key_fn(warp.key, warp.pipe_stage_id, ready, full,
                         warp.last_issued, warp.age, greedy)
            eligible.append((key, warp))
            if best is None or key < best_key:
                best, best_key = warp, key
        if best is None:
            return wake
        for key, warp in eligible:
            if warp is not best:
                losers.append((key, warp.key, warp))
        eligible.clear()
        self._execute(best, now)
        self._greedy[pb_index] = best.key
        return True

    def _steal_issue(
        self,
        idle: list[int],
        losers: list[tuple[Any, int, _WarpRun]],
        now: float,
    ) -> tuple[bool, int]:
        """Fill idle issue slots with arbitration losers (best first).

        Eligibility is re-checked at steal time: an earlier issue this
        cycle may have consumed the queue entry or space the loser's
        eligibility depended on.  A stolen warp stays on its home
        processing block (its registers live there); only this cycle's
        spare issue slot is borrowed, and greedy-then-oldest continuity
        is kept on the home block so the policy still sees one
        uninterrupted run.

        Returns ``(issued anything, index of the first loser this pass
        did not touch)`` — consumed losers have either issued or had
        their real blocking cause recorded, so only the untouched tail
        still owes an ``ISSUE_PORT`` stall.
        """
        losers.sort(key=lambda entry: (entry[0], entry[1]))
        issued = False
        index = 0
        for _slot in idle:
            while index < len(losers):
                _key, _tie, warp = losers[index]
                index += 1
                can, warp_wake, cause = self._can_issue(warp, now)
                if can:
                    self._execute(warp, now)
                    self._greedy[warp.pb] = warp.key
                    self._post_steal_issue(warp)
                    issued = True
                    break
                if cause is not None:
                    self._note_stall(warp, now, cause)
                warp.wake_at = warp_wake
                self._post_steal_block(warp)
        return issued, index

    def _post_steal_issue(self, warp: _WarpRun) -> None:
        """Hook: a loser issued via a borrowed slot (event core only)."""

    def _post_steal_block(self, warp: _WarpRun) -> None:
        """Hook: a loser re-blocked at steal time (event core only)."""

    # -- stall attribution ----------------------------------------------

    def _note_stall(
        self, warp: _WarpRun, now: float, cause: StallCause
    ) -> None:
        """Record that ``cause`` blocks ``warp`` as of ``now``.

        Repeated observations of the same cause are free; the interval
        is only charged (via :meth:`_close_stall`) when the cause
        changes or the warp issues.
        """
        if warp.prof_cause is cause:
            return
        self._close_stall(warp, now)
        warp.prof_cause = cause

    def _close_stall(self, warp: _WarpRun, now: float) -> None:
        """Charge the open accounting interval and move the mark."""
        delta = now - warp.prof_mark
        if delta > 0.0:
            cause = warp.prof_cause or StallCause.NO_ELIGIBLE
            self.stats.count_stall(warp.pipe_stage_id, cause, delta)
            prof = self.profiler
            if prof is not None:
                prof.record_stall(
                    warp.tb.tb_index, warp.key, warp.pipe_stage_id,
                    cause, warp.prof_mark, delta,
                )
        warp.prof_mark = now

    # -- issue legality -------------------------------------------------

    def _can_issue(
        self, warp: _WarpRun, now: float
    ) -> tuple[bool, float, StallCause | None]:
        """(can issue, wake time, blocking cause when it cannot)."""
        if warp.pending_extra > 0:
            return True, now, None
        if warp.pc >= len(warp.instrs):
            warp.done = True
            return False, INFINITY, None
        instr = warp.instrs[warp.pc]
        # Register dependences.
        ready = now
        for reg in instr.src_regs:
            t = warp.scoreboard.get(reg)
            if t is not None and t > ready:
                ready = t
        if ready > now:
            return False, ready, StallCause.SCOREBOARD
        # Queue pop: head entry must exist and its data be ready.  An
        # empty channel can only be filled by another agent (producer
        # warp or the TMA engine): wake is unknown (infinity) and the
        # warp is re-armed by the main loop while progress continues.
        if instr.queue_pop is not None:
            chan = warp.tb.queues.channel(instr.queue_pop, warp.slice_id)
            head = chan.head_ready_time()
            if head is None:
                return False, INFINITY, StallCause.QUEUE_EMPTY
            if head > now:
                return False, head, StallCause.QUEUE_EMPTY
        # Queue push: space must exist (freed only by a consumer pop).
        if instr.queue_push is not None:
            chan = warp.tb.queues.channel(instr.queue_push, warp.slice_id)
            if not chan.can_push():
                return False, INFINITY, StallCause.QUEUE_FULL
        # Outstanding-load limit.
        if instr.opcode is Opcode.LDG:
            warp.outstanding = [t for t in warp.outstanding if t > now]
            if len(warp.outstanding) >= self._max_loads:
                return False, min(warp.outstanding), StallCause.MSHR
        # Barriers.
        if instr.opcode is Opcode.BAR_WAIT:
            barrier = warp.tb.barriers.arrive_wait(instr.barrier_id)
            pass_time = barrier.wait_pass_time(warp.key)
            if pass_time > now:
                return False, pass_time, StallCause.BARRIER_WAIT
        if instr.opcode is Opcode.BAR_SYNC:
            barrier = warp.tb.barriers.sync(instr.barrier_id)
            if not warp.sync_marked:
                barrier.arrive(warp.key, now)
                warp.sync_marked = True
            pass_time = barrier.pass_time(warp.key)
            if pass_time > now:
                return False, pass_time, StallCause.BARRIER_WAIT
        return True, now, None

    # -- execution ------------------------------------------------------

    def _execute(self, warp: _WarpRun, now: float) -> None:
        # Close the stall-attribution interval: [prof_mark, now) was a
        # stall, [now, now+1) is this issue.
        self._close_stall(warp, now)
        warp.prof_cause = None
        warp.prof_mark = now + 1.0
        prof = self.profiler
        if warp.pending_extra > 0:
            warp.pending_extra -= 1
            self.stats.queue_overhead_instrs += 1
            self.stats.count_issue(
                now, InstrCategory.QUEUE, warp.pipe_stage_id, tensor_fp=False
            )
            if prof is not None:
                prof.record_issue(
                    warp.tb.tb_index, warp.key, warp.pipe_stage_id,
                    "QUEUE_OP", now,
                )
            warp.last_issued = now
            warp.wake_at = now + 1.0
            return
        instr = warp.instrs[warp.pc]
        opcode = instr.opcode
        smem_queue = self._smem_queue

        unit = instr.unit
        if unit is FuncUnit.FP:
            completion = now + self._fp_latency
        elif unit is FuncUnit.TENSOR:
            completion = now + self._tensor_latency
        else:
            completion = now + self._int_latency

        if opcode is Opcode.LDG:
            completion = self.memory.access_global(now, instr.sectors)
            self.stats.count_sectors(now, len(instr.sectors))
            warp.outstanding.append(completion)
            if instr.queue_push is not None:
                chan = warp.tb.queues.channel(instr.queue_push, warp.slice_id)
                entry_ready = completion
                if smem_queue:
                    entry_ready = self.memory.access_smem(
                        completion, warp.tb.trace.warp_width
                    )
                    warp.pending_extra += _SMEM_PUSH_EXTRA
                chan.push(entry_ready)
        elif opcode is Opcode.STG:
            done = self.memory.access_global(now, instr.sectors)
            self.stats.count_sectors(now, len(instr.sectors))
            del done  # stores do not block the warp
        elif opcode is Opcode.LDGSTS:
            landed = self.memory.access_global(now, instr.sectors)
            self.stats.count_sectors(now, len(instr.sectors))
            landed = self.memory.access_smem(landed, instr.smem_words)
            warp.async_copy_done = max(warp.async_copy_done, landed)
        elif opcode in (Opcode.LDS, Opcode.STS):
            completion = self.memory.access_smem(now, instr.smem_words)
        elif opcode in (Opcode.TMA_TILE, Opcode.TMA_STREAM, Opcode.TMA_GATHER):
            self._submit_tma(warp, instr, now)
        elif opcode is Opcode.BAR_ARRIVE:
            barrier = warp.tb.barriers.arrive_wait(instr.barrier_id)
            barrier.arrive(max(now, warp.async_copy_done))
        elif opcode is Opcode.BAR_WAIT:
            barrier = warp.tb.barriers.arrive_wait(instr.barrier_id)
            barrier.record_wait(warp.key)
        elif opcode is Opcode.BAR_SYNC:
            barrier = warp.tb.barriers.sync(instr.barrier_id)
            barrier.record_pass(warp.key)
            warp.sync_marked = False

        if instr.queue_pop is not None:
            chan = warp.tb.queues.channel(instr.queue_pop, warp.slice_id)
            head = chan.pop()
            data_ready = max(now, head)
            if smem_queue:
                data_ready = self.memory.access_smem(
                    data_ready, warp.tb.trace.warp_width
                )
                warp.pending_extra += _SMEM_POP_EXTRA
            completion = max(completion, data_ready + self._int_latency)

        for reg in instr.dst_regs:
            warp.scoreboard[reg] = completion

        self.stats.count_issue(
            now,
            instr.category,
            warp.pipe_stage_id,
            tensor_fp=instr.unit in _TENSOR_FP_UNITS,
        )
        if prof is not None:
            prof.record_issue(
                warp.tb.tb_index, warp.key, warp.pipe_stage_id,
                opcode.value, now,
            )
        warp.last_issued = now
        warp.pc += 1
        warp.wake_at = now + 1.0
        if warp.pc >= len(warp.instrs):
            warp.done = True

    def _submit_tma(
        self, warp: _WarpRun, instr: DynamicInstr, now: float
    ) -> None:
        job = instr.tma_job or {}
        channel = None
        queue_id = job.get("queue")
        if queue_id is not None:
            channel = warp.tb.queues.channel(queue_id, warp.slice_id)
        barrier_id = job.get("barrier")
        on_complete = None
        if barrier_id is not None:
            barrier = warp.tb.barriers.arrive_wait(barrier_id)
            on_complete = barrier.arrive
        self.tma.submit(now, job, channel, on_complete)
