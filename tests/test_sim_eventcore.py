"""Event-core edge cases: the wakeup heap, simultaneous and
zero-latency events, full-queue starvation, and determinism.

The broad exactness contract lives in ``test_core_differential.py``;
these tests pin the event machinery's corners directly — the cases
where an event-driven loop classically diverges from a cycle-stepped
one.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.errors import DeadlockError
from repro.fexec import run_kernel
from repro.fexec.trace import DynamicInstr, KernelTrace, WarpTrace
from repro.fuzz.metamorphic import assert_stall_accounting
from repro.isa.opcodes import FuncUnit, InstrCategory, Opcode
from repro.sim.config import baseline_a100, wasp_gpu
from repro.sim.events import WakeupHeap
from repro.sim.gpu import make_simulator, simulate_kernel


class _Warp:
    """Stand-in with the two attributes WakeupHeap reads."""

    def __init__(self, key: int) -> None:
        self.key = key
        self.pos = 0


# -- WakeupHeap -----------------------------------------------------------


def test_heap_orders_by_time_then_key():
    heap = WakeupHeap()
    w1, w2, w3 = _Warp(1), _Warp(2), _Warp(3)
    heap.push(20.0, w3)
    heap.push(10.0, w2)
    heap.push(10.0, w1)
    assert heap.next_time() == 10.0
    assert heap.pop() is w1  # same time: lower key first
    assert heap.pop() is w2
    assert heap.next_time() == 20.0
    assert heap.pop() is w3


def test_heap_pop_due_is_insertion_order_independent():
    """Any insertion order yields the same drain order (determinism)."""
    import itertools

    warps = [_Warp(k) for k in range(4)]
    times = [5.0, 3.0, 3.0, 7.0]
    reference = None
    for perm in itertools.permutations(range(4)):
        heap = WakeupHeap()
        for i in perm:
            heap.push(times[i], warps[i])
        drained = [w.key for w in heap.pop_due(5.0)]
        if reference is None:
            reference = drained
        assert drained == reference
    assert reference == [1, 2, 0]  # time asc, then key asc; 7.0 not due


def test_heap_empty_is_infinite():
    from repro.sim.barriers import INFINITY

    heap = WakeupHeap()
    assert heap.next_time() == INFINITY
    assert heap.pop_due(1e9) == []


# -- trace helpers --------------------------------------------------------


def _warp(warp_id, stage, instrs):
    return WarpTrace(warp_id=warp_id, pipe_stage_id=stage, instrs=instrs)


def _ldg_push(queue_id, sector):
    return DynamicInstr(
        opcode=Opcode.LDG, unit=FuncUnit.LSU_GLOBAL,
        category=InstrCategory.MEMORY,
        dst_regs=(1,), sectors=(sector,), queue_push=queue_id,
    )


def _pop(queue_id):
    return DynamicInstr(
        opcode=Opcode.MOV, unit=FuncUnit.INT,
        category=InstrCategory.QUEUE, dst_regs=(2,), queue_pop=queue_id,
    )


def _fp(dst=3, src=()):
    return DynamicInstr(
        opcode=Opcode.FFMA, unit=FuncUnit.FP,
        category=InstrCategory.COMPUTE, dst_regs=(dst,), src_regs=src,
    )


def _both_cores(traces, gpu):
    results = {}
    for core in ("reference", "event"):
        sim = make_simulator(gpu, traces, core=core)
        results[core] = sim.run()
    return results["reference"], results["event"]


def _assert_same(ref, event):
    """ref/event are SMStats from the two cores' raw runs."""
    assert ref.cycles == event.cycles
    assert ref.stall_cycles == event.stall_cycles
    assert ref.stall_spans == event.stall_spans
    assert ref.issued_total == event.issued_total
    assert ref.active_warp_cycles == event.active_warp_cycles


# -- simultaneous & zero-latency events -----------------------------------


def test_simultaneous_wakeups_one_cycle():
    """Many warps released by the same scoreboard time must re-enter
    arbitration on the same cycle, in scan order, on both cores."""
    # All warps issue an identical load chain: their completions (and
    # hence wakeups) collide on the same cycles.
    instrs = [
        DynamicInstr(
            opcode=Opcode.LDG, unit=FuncUnit.LSU_GLOBAL,
            category=InstrCategory.MEMORY, dst_regs=(1,), sectors=(0,),
        ),
        _fp(dst=3, src=(1,)),
        _fp(dst=4, src=(3,)),
    ]
    trace = KernelTrace(
        kernel_name="simul", num_warps=8, warp_width=8,
        warps=[_warp(w, 0, list(instrs)) for w in range(8)],
    )
    ref, event = _both_cores([trace], baseline_a100())
    _assert_same(ref, event)


def test_zero_latency_alu_events():
    """int_latency=0 makes scoreboard releases land on the issue cycle
    itself — the classic zero-delay event-loop corner."""
    gpu = replace(baseline_a100(), int_latency=0, fp_latency=0)
    chain = []
    for i in range(10):
        chain.append(DynamicInstr(
            opcode=Opcode.IADD, unit=FuncUnit.INT,
            category=InstrCategory.COMPUTE,
            dst_regs=(1,), src_regs=(1,),
        ))
    trace = KernelTrace(
        kernel_name="zero", num_warps=4, warp_width=8,
        warps=[_warp(w, 0, list(chain)) for w in range(4)],
    )
    ref, event = _both_cores([trace], gpu)
    _assert_same(ref, event)
    assert ref.issued_total == 40


# -- full-queue starvation ------------------------------------------------


def test_all_producers_starve_on_full_queue():
    """Every producer blocks on a full queue while the consumer sleeps
    on a long-latency dependence: the only wake signal is the heap.
    The event core must jump to the consumer's wake, replay its pops,
    and wake the producers via the full_waiters registry — landing on
    exactly the reference's cycle count."""
    from repro.core.specs import NamedQueueSpec, ThreadBlockSpec

    capacity = 2
    gpu = wasp_gpu(rfq_size=capacity)
    spec = ThreadBlockSpec(
        num_stages=2,
        warps_per_stage=[[0, 1, 2], [3, 4, 5]],
        stage_registers=[16, 16],
        queues=[NamedQueueSpec(0, 0, 1, size=capacity)],
    )
    producers = [
        _warp(w, 0, [_ldg_push(0, 16 * w + i) for i in range(6)])
        for w in range(3)
    ]
    consumers = [
        _warp(3 + w, 1, [
            DynamicInstr(  # long-latency load the pops depend on
                opcode=Opcode.LDG, unit=FuncUnit.LSU_GLOBAL,
                category=InstrCategory.MEMORY, dst_regs=(9,),
                sectors=(999 + w,),
            ),
            _fp(dst=8, src=(9,)),
        ] + [_pop(0) for _ in range(6)])
        for w in range(3)
    ]
    trace = KernelTrace(
        kernel_name="starve", num_warps=6, warp_width=8,
        warps=producers + consumers, tb_spec=spec,
    )
    ref, event = _both_cores([trace], gpu)
    _assert_same(ref, event)
    # The scenario actually exercised queue-full blocking.
    from repro.profiling.stalls import StallCause
    assert any(
        cause is StallCause.QUEUE_FULL and cycles > 0
        for (_stage, cause), cycles in ref.stall_cycles.items()
    )


def test_deadlock_parity_same_cycle():
    """When no wake exists anywhere, both cores must report the same
    deadlock at the same cycle (the message embeds it)."""
    trace = KernelTrace(
        kernel_name="dead", num_warps=2, warp_width=8,
        warps=[
            _warp(0, 0, [_fp(dst=3), _pop(0)]),
            _warp(1, 0, [_fp(dst=4), _pop(1)]),
        ],
    )
    errors = {}
    for core in ("reference", "event"):
        with pytest.raises(DeadlockError) as excinfo:
            make_simulator(wasp_gpu(), [trace], core=core).run()
        errors[core] = str(excinfo.value)
    assert errors["reference"] == errors["event"]


# -- determinism & accounting --------------------------------------------


def test_event_core_is_deterministic(gather_setup):
    program, image_factory, launch, _ = gather_setup
    traces = run_kernel(program, image_factory(), launch).traces
    first = simulate_kernel(traces, wasp_gpu(), core="event")
    second = simulate_kernel(traces, wasp_gpu(), core="event")
    assert first.cycles == second.cycles
    assert first.stall_cycles == second.stall_cycles
    assert first.stall_spans == second.stall_spans


def test_event_core_stall_accounting(stream_setup, tile_setup):
    for setup in (stream_setup, tile_setup):
        program, image_factory, launch, _ = setup
        traces = run_kernel(program, image_factory(), launch).traces
        for gpu in (baseline_a100(), wasp_gpu()):
            result = simulate_kernel(traces, gpu, core="event")
            assert_stall_accounting(result, context="eventcore")


def test_compiled_priority_matches_priority_key():
    """The allocation-free hot path agrees with the reference keys."""
    import itertools

    from repro.core.scheduling import (
        SchedulingPolicy, WarpSchedState, compiled_priority, priority_key,
    )

    grid = itertools.product(
        (0, 3), (0, 1, 2), (False, True), (False, True),
        (-1.0, 5.0), (0, 9), (None, 0, 3),
    )
    for key, stage, ready, full, last, age, greedy in grid:
        state = WarpSchedState(
            warp_key=key, pipe_stage_id=stage, incoming_ready=ready,
            incoming_full=full, last_issued=last, age=age,
        )
        for policy in SchedulingPolicy:
            assert compiled_priority(policy)(
                key, stage, ready, full, last, age, greedy
            ) == priority_key(policy, state, greedy), (policy, state)
