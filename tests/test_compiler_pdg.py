"""PDG construction: def-use edges, loop-carried dependences."""

from repro.core.compiler.pdg import build_pdg
from repro.isa import Opcode, ProgramBuilder


def _simple():
    b = ProgramBuilder("p")
    a = b.mov(1)            # 0
    c = b.iadd(a, 2)        # 1
    d = b.imul(c, a)        # 2
    b.stg(d, c)             # 3
    b.exit()
    return b.finish()


def test_direct_def_use_edges():
    prog = _simple()
    pdg = build_pdg(prog)
    instrs = list(prog.instructions())
    mov, add, mul, stg = instrs[0], instrs[1], instrs[2], instrs[3]
    assert add.uid in pdg.data_succs[mov.uid]
    assert mul.uid in pdg.data_succs[mov.uid]  # a used twice
    assert mul.uid in pdg.data_succs[add.uid]
    assert stg.uid in pdg.data_succs[mul.uid]
    assert stg.uid in pdg.data_succs[add.uid]


def test_kill_cuts_stale_defs():
    b = ProgramBuilder("p")
    a = b.mov(1)          # def1
    b.mov(2, dst=a)       # def2 kills def1
    use = b.iadd(a, 0)    # uses def2 only
    b.stg(use, use)
    b.exit()
    prog = b.finish()
    pdg = build_pdg(prog)
    instrs = list(prog.instructions())
    def1, def2, add = instrs[0], instrs[1], instrs[2]
    assert add.uid in pdg.data_succs[def2.uid]
    assert add.uid not in pdg.data_succs[def1.uid]


def test_loop_carried_dependence():
    b = ProgramBuilder("p")
    i = b.mov(0)
    b.label("loop")
    b.iadd(i, 1, dst=i)
    p = b.isetp("lt", i, 4)
    b.bra("loop", guard=p)
    b.label("end")
    b.exit()
    prog = b.finish()
    pdg = build_pdg(prog)
    update = prog.find_block("loop").instructions[0]
    # The induction update reaches itself around the backedge.
    assert update.uid in pdg.data_succs[update.uid]


def test_predicate_edges():
    b = ProgramBuilder("p")
    i = b.mov(0)
    b.label("loop")
    b.iadd(i, 1, dst=i)
    p = b.isetp("lt", i, 4)
    b.bra("loop", guard=p)
    b.label("end")
    b.exit()
    prog = b.finish()
    pdg = build_pdg(prog)
    setp = prog.find_block("loop").instructions[1]
    branch = prog.find_block("loop").instructions[2]
    assert branch.uid in pdg.data_succs[setp.uid]


def test_global_loads_enumeration():
    b = ProgramBuilder("p")
    a = b.ldg(b.mov(64))
    b.ldgsts(b.mov(64), b.mov(0))
    b.stg(b.mov(128), a)
    b.exit()
    pdg = build_pdg(b.finish())
    loads = pdg.global_loads()
    assert [l.opcode for l in loads] == [Opcode.LDG, Opcode.LDGSTS]


def test_consumers_of_load():
    b = ProgramBuilder("p")
    v = b.ldg(b.mov(64))
    use1 = b.fadd(v, 1.0)
    use2 = b.fmul(v, 2.0)
    b.stg(b.mov(128), use1)
    b.stg(b.mov(129), use2)
    b.exit()
    prog = b.finish()
    pdg = build_pdg(prog)
    load = pdg.global_loads()[0]
    consumers = pdg.consumers_of_load(load)
    assert {c.opcode for c in consumers} == {Opcode.FADD, Opcode.FMUL}
