"""The failure corpus: save, load, and replay — including the entries
committed under ``tests/corpus/``, which this test suite replays on
every run (the PR gate replays them in CI as well)."""

from __future__ import annotations

import json

import pytest

from repro.fuzz.corpus import (
    CorpusEntry,
    default_corpus_dir,
    load_corpus,
    replay_entry,
    save_failure,
)
from repro.fuzz.oracle import FuzzFailure
from repro.fuzz.spec import generate_spec


def _entry(seed=0, check="deadlock", inject="drop-push"):
    return CorpusEntry(
        spec=generate_spec(seed),
        check=check,
        expect=f"fail:{check}",
        inject=inject,
        note="unit test entry",
    )


def test_entry_json_round_trip():
    entry = _entry()
    back = CorpusEntry.from_json(
        json.loads(json.dumps(entry.to_json()))
    )
    assert back.spec == entry.spec
    assert back.check == entry.check
    assert back.expect == entry.expect
    assert back.inject == entry.inject
    assert back.note == entry.note


def test_save_and_load(tmp_path):
    entry = _entry()
    path = entry.save(tmp_path)
    assert path.name == f"{entry.name}.json"
    loaded = load_corpus(tmp_path)
    assert len(loaded) == 1
    assert loaded[0].spec == entry.spec


def test_load_missing_directory_is_empty(tmp_path):
    assert load_corpus(tmp_path / "nope") == []


def test_save_failure_injected_expects_failure(tmp_path):
    failure = FuzzFailure(
        seed=3, spec=generate_spec(3), check="deadlock",
        message="x", options_name="sw-queues",
    )
    save_failure(failure, corpus_dir=tmp_path, inject="drop-push")
    (entry,) = load_corpus(tmp_path)
    assert entry.expect == "fail:deadlock"
    assert entry.inject == "drop-push"


def test_save_failure_genuine_expects_pass_and_prefers_minimized(tmp_path):
    failure = FuzzFailure(
        seed=3, spec=generate_spec(3), check="memory-divergence",
        message="x", minimized=generate_spec(99),
    )
    save_failure(failure, corpus_dir=tmp_path)
    (entry,) = load_corpus(tmp_path)
    assert entry.expect == "pass"
    assert entry.spec == generate_spec(99)


def test_replay_injected_entry_catches_the_bug():
    entry = _entry(seed=0, check="deadlock", inject="drop-push")
    failures = replay_entry(entry)
    assert any(f.check == "deadlock" for f in failures)


def test_replay_clean_entry_passes():
    entry = CorpusEntry(
        spec=generate_spec(0), check="none", expect="pass",
    )
    assert replay_entry(entry) == []


@pytest.mark.parametrize(
    "entry",
    load_corpus(),
    ids=lambda entry: entry.name,
)
def test_committed_corpus_entries_hold(entry):
    """Every committed corpus entry must replay as it expects: clean
    for fixed bugs, caught for injected detector self-tests."""
    failures = replay_entry(entry)
    if entry.expect == "pass":
        assert not failures, [f.summary() for f in failures]
    else:
        want = entry.expect.split(":", 1)[1]
        assert any(f.check == want for f in failures), (
            f"{entry.name}: expected {want}, got "
            f"{sorted({f.check for f in failures}) or 'a pass'}"
        )


def test_committed_corpus_exists():
    assert default_corpus_dir().is_dir()
    assert load_corpus(), "tests/corpus/ must ship at least one entry"
