"""Program/CFG structure and validation."""

import pytest

from repro.core.specs import ThreadBlockSpec
from repro.errors import ValidationError
from repro.isa import Instruction, Opcode, ProgramBuilder
from repro.isa.program import Program


def _loop_program():
    b = ProgramBuilder("p")
    i = b.mov(0)
    b.label("loop")
    b.iadd(i, 1, dst=i)
    p = b.isetp("lt", i, 4)
    b.bra("loop", guard=p)
    b.label("exit")
    b.exit()
    return b.finish()


def test_successors_of_conditional_backedge():
    prog = _loop_program()
    loop = prog.find_block("loop")
    assert set(prog.successors(loop)) == {"loop", "exit"}


def test_predecessors():
    prog = _loop_program()
    preds = prog.predecessors()
    assert set(preds["loop"]) == {"entry", "loop"}
    assert preds["entry"] == []


def test_entry_is_first_block():
    prog = _loop_program()
    assert prog.entry.label == "entry"


def test_duplicate_labels_rejected():
    prog = Program("dup")
    prog.block("a")
    with pytest.raises(ValidationError):
        prog.block("a")


def test_unresolved_branch_target_rejected():
    prog = Program("bad")
    blk = prog.block("entry")
    blk.append(Instruction(Opcode.BRA, target="nowhere"))
    with pytest.raises(ValidationError):
        prog.validate()


def test_missing_exit_rejected():
    prog = Program("noexit")
    blk = prog.block("entry")
    blk.append(Instruction(Opcode.NOP))
    with pytest.raises(ValidationError):
        prog.validate()


def test_branch_mid_block_rejected():
    prog = Program("mid")
    blk = prog.block("entry")
    blk.append(Instruction(Opcode.BRA, target="entry"))
    blk.append(Instruction(Opcode.NOP))
    with pytest.raises(ValidationError):
        prog.validate()


def test_register_count_derived_from_max_index():
    prog = _loop_program()
    assert prog.register_count() == prog.max_register_index() + 1


def test_register_count_override():
    prog = _loop_program()
    prog.num_registers = 40
    assert prog.register_count() == 40


def test_clone_preserves_structure_and_is_isolated():
    prog = _loop_program()
    clone = prog.clone()
    assert [b.label for b in clone.blocks] == [b.label for b in prog.blocks]
    assert clone.to_text() == prog.to_text()
    clone.blocks[0].instructions.clear()
    assert len(prog.blocks[0].instructions) > 0
    original_uids = {i.uid for i in prog.instructions()}
    clone_uids = {i.uid for i in clone.instructions()}
    assert not original_uids & clone_uids


def test_containing_block():
    prog = _loop_program()
    instr = prog.find_block("loop").instructions[0]
    assert prog.containing_block(instr).label == "loop"


def test_to_text_contains_labels_and_opcodes():
    text = _loop_program().to_text()
    assert "loop:" in text
    assert "IADD" in text
    assert "EXIT" in text


def test_max_predicate_index():
    prog = _loop_program()
    assert prog.max_predicate_index() == 0
    empty = Program("e")
    blk = empty.block("entry")
    blk.append(Instruction(Opcode.EXIT))
    assert empty.max_predicate_index() == -1


def _ring_program(initial_a: int, initial_b: int) -> Program:
    """Minimal two-slot ring program with configurable empty credit."""
    prog = Program("ring")
    blk = prog.block("entry")
    blk.append(Instruction(Opcode.EXIT))
    prog.tb_spec = ThreadBlockSpec(
        num_stages=2,
        warps_per_stage=[[0], [1]],
        stage_registers=[8, 8],
        barrier_expected={
            "tile0_A_empty": 1, "tile0_B_empty": 1,
            "tile0_A_filled": 1, "tile0_B_filled": 1,
        },
        barrier_initial={
            "tile0_A_empty": initial_a, "tile0_B_empty": initial_b,
        },
    )
    return prog


def test_ring_credit_within_slots_accepted():
    """The legal protocol: N−1 explicit credit generations for N slots
    (and even N, phase-off-by-one's territory, stays a runtime/HB
    matter — validate only rejects credit *exceeding* the slots)."""
    _ring_program(1, 0).validate()
    _ring_program(1, 1).validate()


def test_ring_credit_deeper_than_slots_rejected():
    """Regression (WASP-R007): ``validate`` used to accept a ring
    credited with more generations than it has SMEM slots — a spec
    that lets the producer overwrite a slot nobody released."""
    prog = _ring_program(2, 1)
    with pytest.raises(ValidationError) as err:
        prog.validate()
    assert any(d.rule == "WASP-R007" for d in err.value.diagnostics)


def test_ring_credit_rule_ignores_non_ring_barriers():
    """Barriers outside the ``<base>_<letter>_empty`` shape never
    trip the ring-credit rule, whatever their credit."""
    prog = Program("plain")
    blk = prog.block("entry")
    blk.append(Instruction(Opcode.EXIT))
    prog.tb_spec = ThreadBlockSpec(
        num_stages=1,
        warps_per_stage=[[0]],
        stage_registers=[8],
        barrier_expected={"handoff_empty": 1, "go": 2},
        barrier_initial={"handoff_empty": 7, "go": 6},
    )
    prog.validate()
