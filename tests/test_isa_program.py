"""Program/CFG structure and validation."""

import pytest

from repro.errors import ValidationError
from repro.isa import Instruction, Opcode, ProgramBuilder
from repro.isa.program import Program


def _loop_program():
    b = ProgramBuilder("p")
    i = b.mov(0)
    b.label("loop")
    b.iadd(i, 1, dst=i)
    p = b.isetp("lt", i, 4)
    b.bra("loop", guard=p)
    b.label("exit")
    b.exit()
    return b.finish()


def test_successors_of_conditional_backedge():
    prog = _loop_program()
    loop = prog.find_block("loop")
    assert set(prog.successors(loop)) == {"loop", "exit"}


def test_predecessors():
    prog = _loop_program()
    preds = prog.predecessors()
    assert set(preds["loop"]) == {"entry", "loop"}
    assert preds["entry"] == []


def test_entry_is_first_block():
    prog = _loop_program()
    assert prog.entry.label == "entry"


def test_duplicate_labels_rejected():
    prog = Program("dup")
    prog.block("a")
    with pytest.raises(ValidationError):
        prog.block("a")


def test_unresolved_branch_target_rejected():
    prog = Program("bad")
    blk = prog.block("entry")
    blk.append(Instruction(Opcode.BRA, target="nowhere"))
    with pytest.raises(ValidationError):
        prog.validate()


def test_missing_exit_rejected():
    prog = Program("noexit")
    blk = prog.block("entry")
    blk.append(Instruction(Opcode.NOP))
    with pytest.raises(ValidationError):
        prog.validate()


def test_branch_mid_block_rejected():
    prog = Program("mid")
    blk = prog.block("entry")
    blk.append(Instruction(Opcode.BRA, target="entry"))
    blk.append(Instruction(Opcode.NOP))
    with pytest.raises(ValidationError):
        prog.validate()


def test_register_count_derived_from_max_index():
    prog = _loop_program()
    assert prog.register_count() == prog.max_register_index() + 1


def test_register_count_override():
    prog = _loop_program()
    prog.num_registers = 40
    assert prog.register_count() == 40


def test_clone_preserves_structure_and_is_isolated():
    prog = _loop_program()
    clone = prog.clone()
    assert [b.label for b in clone.blocks] == [b.label for b in prog.blocks]
    assert clone.to_text() == prog.to_text()
    clone.blocks[0].instructions.clear()
    assert len(prog.blocks[0].instructions) > 0
    original_uids = {i.uid for i in prog.instructions()}
    clone_uids = {i.uid for i in clone.instructions()}
    assert not original_uids & clone_uids


def test_containing_block():
    prog = _loop_program()
    instr = prog.find_block("loop").instructions[0]
    assert prog.containing_block(instr).label == "loop"


def test_to_text_contains_labels_and_opcodes():
    text = _loop_program().to_text()
    assert "loop:" in text
    assert "IADD" in text
    assert "EXIT" in text


def test_max_predicate_index():
    prog = _loop_program()
    assert prog.max_predicate_index() == 0
    empty = Program("e")
    blk = empty.block("entry")
    blk.append(Instruction(Opcode.EXIT))
    assert empty.max_predicate_index() == -1
