"""Timing-level liveness: deadlocks are detected, pipelines terminate."""

import pytest

from repro.errors import DeadlockError
from repro.fexec.trace import DynamicInstr, KernelTrace, WarpTrace
from repro.isa.opcodes import FuncUnit, InstrCategory, Opcode
from repro.sim import simulate_kernel
from repro.sim.config import baseline_a100


def _warp(warp_id, stage, instrs):
    return WarpTrace(warp_id=warp_id, pipe_stage_id=stage, instrs=instrs)


def _pop(queue_id):
    return DynamicInstr(
        opcode=Opcode.MOV, unit=FuncUnit.INT,
        category=InstrCategory.QUEUE, dst_regs=(0,), queue_pop=queue_id,
    )


def _nop():
    return DynamicInstr(
        opcode=Opcode.NOP, unit=FuncUnit.NOP,
        category=InstrCategory.COMPUTE,
    )


def test_pop_without_producer_deadlocks():
    trace = KernelTrace(
        kernel_name="dead", num_warps=1, warp_width=8,
        warps=[_warp(0, 0, [_pop(0)])],
    )
    with pytest.raises(DeadlockError):
        simulate_kernel([trace], baseline_a100())


def test_wait_without_arrive_deadlocks():
    wait = DynamicInstr(
        opcode=Opcode.BAR_WAIT, unit=FuncUnit.SYNC,
        category=InstrCategory.SYNC, barrier_id="never",
    )
    trace = KernelTrace(
        kernel_name="dead", num_warps=1, warp_width=8,
        warps=[_warp(0, 0, [wait])],
    )
    with pytest.raises(DeadlockError):
        simulate_kernel([trace], baseline_a100())


def test_partial_sync_deadlocks():
    """One warp reaches BAR.SYNC; the other already finished."""
    sync = DynamicInstr(
        opcode=Opcode.BAR_SYNC, unit=FuncUnit.SYNC,
        category=InstrCategory.SYNC, barrier_id="tb",
    )
    trace = KernelTrace(
        kernel_name="dead", num_warps=2, warp_width=8,
        warps=[_warp(0, 0, [sync]), _warp(1, 0, [])],
    )
    with pytest.raises(DeadlockError):
        simulate_kernel([trace], baseline_a100())


def test_plain_instructions_terminate():
    trace = KernelTrace(
        kernel_name="ok", num_warps=2, warp_width=8,
        warps=[_warp(0, 0, [_nop()] * 10), _warp(1, 0, [_nop()] * 3)],
    )
    result = simulate_kernel([trace], baseline_a100())
    assert result.cycles > 0
    assert result.issued_total == 13
