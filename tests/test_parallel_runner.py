"""Parallel sweep runner: determinism, job resolution, reporting.

The key property is numerical equivalence: ``--jobs N`` must reproduce
the exact figures of a serial run.  These tests run a small benchmark
subset at reduced scale against an isolated temporary cache directory.
"""

import pytest

from repro.experiments import runner
from repro.experiments.configs import baseline_config, wasp_gpu_config
from repro.experiments.parallel import (
    last_report,
    resolve_jobs,
    run_sweep,
)
from repro.experiments.reporting import format_cache_report
from repro.experiments.runner import CacheStats, TraceCache
from repro.fexec.trace_store import TraceStore

SCALE = 0.1
FAST = ["pointnet", "lonestar_bfs"]


@pytest.fixture
def isolated_cache(tmp_path):
    """Point GLOBAL_CACHE at an empty store in a fresh state."""
    saved = runner.GLOBAL_CACHE.__dict__.copy()
    runner.GLOBAL_CACHE._entries = {}
    runner.GLOBAL_CACHE.stats = CacheStats()
    runner.GLOBAL_CACHE.store = TraceStore(tmp_path / "cache")
    yield runner.GLOBAL_CACHE
    runner.GLOBAL_CACHE.__dict__.update(saved)


def _configs():
    return [baseline_config(), wasp_gpu_config()]


def test_resolve_jobs_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert resolve_jobs(None) == 1
    assert resolve_jobs(3) == 3
    assert resolve_jobs(0) == 1
    monkeypatch.setenv("REPRO_JOBS", "4")
    assert resolve_jobs(None) == 4
    assert resolve_jobs(2) == 2
    monkeypatch.setenv("REPRO_JOBS", "garbage")
    assert resolve_jobs(None) == 1


def test_parallel_matches_serial(isolated_cache):
    configs = _configs()
    serial = run_sweep(FAST, SCALE, configs, jobs=1)
    parallel = run_sweep(FAST, SCALE, configs, jobs=2)
    for name in FAST:
        for idx in range(len(configs)):
            assert parallel.total_cycles(name, idx) == pytest.approx(
                serial.total_cycles(name, idx), rel=0, abs=0
            )


def test_parallel_results_keep_kernel_objects(isolated_cache):
    sweep = run_sweep(["pointnet"], SCALE, [baseline_config()], jobs=2)
    result = sweep.benchmark_result("pointnet", 0)
    assert all(k.kernel is not None for k in result.kernels)
    assert result.total_cycles > 0


def test_second_sweep_is_all_cache_hits(isolated_cache):
    configs = _configs()
    run_sweep(FAST, SCALE, configs, jobs=1)
    again = run_sweep(FAST, SCALE, configs, jobs=1)
    assert again.report.stats.generations == 0
    assert again.report.stats.lookups > 0


def test_kernel_names_filter(isolated_cache):
    from repro.workloads import get_benchmark

    bench = get_benchmark("pointnet", SCALE)
    only = bench.kernels[0].name
    sweep = run_sweep(
        ["pointnet"], SCALE, [baseline_config()],
        kernel_names={"pointnet": [only]},
    )
    assert sweep.report.num_tasks == 1
    assert sweep.kernel_result("pointnet", only, 0).cycles > 0
    if len(bench.kernels) > 1:
        with pytest.raises(KeyError):
            sweep.kernel_result("pointnet", bench.kernels[1].name, 0)


def test_report_recorded_and_renders(isolated_cache):
    sweep = run_sweep(["pointnet"], SCALE, [baseline_config()], jobs=1)
    report = last_report()
    assert report is sweep.report
    assert report.num_tasks == len(
        sweep.benchmark_result("pointnet", 0).kernels
    )
    text = format_cache_report(report)
    assert "jobs=1" in text
    assert "trace cache:" in text


def test_trace_cache_default_constructor_is_memory_only():
    cache = TraceCache()
    assert cache.store is None


def test_parallel_cache_stats_aggregate_from_workers(isolated_cache):
    """Worker-side hit/miss counters must reach the parent's report.

    With a cold cache and ``jobs=2``, the warm phase generates each
    unique (kernel, options) trace exactly once across the pool; the
    deltas are measured inside the workers and merged in the parent, so
    the report must show exactly that many generations — not zero
    (counters lost in the pool) and not more (duplicated work).
    """
    configs = _configs()
    sweep = run_sweep(FAST, SCALE, configs, jobs=2)
    stats = sweep.report.stats

    unique = set()
    for name in FAST:
        from repro.experiments.runner import _options_key
        from repro.experiments.parallel import _compiler_options_for
        from repro.workloads import get_benchmark

        for kernel in get_benchmark(name, SCALE).kernels:
            digest = kernel.content_digest()
            unique.add((digest, None))
            for config in configs:
                options = _compiler_options_for(kernel, config)
                if options is not None:
                    unique.add((digest, _options_key(options)))
    assert stats.generations == len(unique)
    assert stats.lookups > stats.generations  # sim phase hits the cache

    # A second parallel sweep over the same store is generation-free.
    again = run_sweep(FAST, SCALE, configs, jobs=2)
    assert again.report.stats.generations == 0
    assert (
        again.report.stats.memory_hits + again.report.stats.disk_hits > 0
    )


def test_sweep_stall_aggregation_matches_serial(isolated_cache):
    """Stall roll-ups are assembled in the parent: jobs-invariant."""
    configs = _configs()
    serial = run_sweep(FAST, SCALE, configs, jobs=1)
    parallel = run_sweep(FAST, SCALE, configs, jobs=2)
    assert serial.report.stall_cycles
    assert parallel.report.stall_cycles == serial.report.stall_cycles
    assert parallel.report.issued_total == serial.report.issued_total
    assert parallel.report.active_warp_cycles == pytest.approx(
        serial.report.active_warp_cycles
    )
    # The sweep-level invariant holds (it holds per simulation).
    total = sum(serial.report.stall_cycles.values())
    assert total + serial.report.issued_total == pytest.approx(
        serial.report.active_warp_cycles
    )


def test_sweep_profile_json_includes_cache_stats(isolated_cache):
    from repro.profiling.report import sweep_stalls_json, sweep_stalls_text

    sweep = run_sweep(["pointnet"], SCALE, _configs(), jobs=1)
    doc = sweep_stalls_json(sweep.report)
    assert doc["schema"] == "repro-sweep-profile-v1"
    assert doc["trace_cache"]["generations"] == (
        sweep.report.stats.generations
    )
    assert doc["stalls_by_cause"]
    import json

    json.dumps(doc)  # plain JSON types only
    text = sweep_stalls_text(sweep.report)
    assert text.startswith("sweep stalls:")
