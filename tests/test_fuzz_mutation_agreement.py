"""Verifier/oracle agreement under deliberate pipeline corruption.

Satellite requirement: corrupting a generated specialized program
(dropping a pop, dropping a push, flipping arrive→wait) must be caught
**twice** — statically by :func:`repro.analysis.verify_program` and
dynamically by the differential oracle.  Disagreement in either
direction is a blind spot.
"""

from __future__ import annotations

import pytest

from repro.analysis import verify_program
from repro.core.compiler import WaspCompiler, WaspCompilerOptions
from repro.fuzz.generator import build_kernel
from repro.fuzz.mutate import MUTATIONS, apply_mutation
from repro.fuzz.oracle import run_oracle
from repro.fuzz.spec import generate_spec

#: (mutation, seed with an applicable site, expected dynamic checks,
#: expected static rule prefix).  Seed skeletons are pinned by the
#: generator determinism tests: 2 = streaming (queue push/pop sites),
#: 7 = tiled (arrive/wait barrier sites under TMA offload), 5 = deep
#: (dual-stream circular-buffer ring).
CASES = [
    ("drop-pop", 2, {"memory-divergence", "queue-balance", "deadlock"},
     "WASP-Q"),
    ("drop-push", 2, {"deadlock", "runtime-crash"}, "WASP-"),
    ("arrive-to-wait", 7, {"deadlock"}, "WASP-D"),
    # The producer's "data ready" signal disappears: the consumer's
    # wait starves (dynamic deadlock) and the happens-before engine
    # loses the ordering edge (WASP-D002 + WASP-S001).
    ("drop-arrive", 7, {"deadlock", "sanitizer-race"}, "WASP-"),
    # One extra generation of barrier credit: nothing deadlocks, so
    # only the SMEM sanitizer can catch it dynamically — and the
    # static side must see the phase overlap (WASP-S004).
    ("phase-off-by-one", 7, {"sanitizer-race"}, "WASP-S"),
    # Deep-pipeline corruptions on the dual-stream ring: all three
    # race without deadlocking (barriers still fire), so the sanitizer
    # is the only dynamic detector, and the happens-before engine must
    # flag the mis-rotated slot (WASP-S001/S004).
    ("skip-slot-advance", 5, {"sanitizer-race"}, "WASP-S"),
    ("depth-off-by-one", 5, {"sanitizer-race"}, "WASP-S"),
    ("stale-phase-read", 5, {"sanitizer-race"}, "WASP-S"),
]


def _specialized(seed, mutation):
    """First compiled variant with a site for ``mutation``."""
    kernel = build_kernel(generate_spec(seed))
    for options in (
        WaspCompilerOptions(enable_tma_offload=False),
        WaspCompilerOptions(),
    ):
        result = WaspCompiler(options).compile(
            kernel.program, num_warps=kernel.launch.num_warps
        )
        if not result.specialized:
            continue
        mutated = apply_mutation(result.program, mutation)
        if mutated is not None:
            return result.program, mutated
    pytest.fail(f"no {mutation} site in any variant of seed {seed}")


@pytest.mark.parametrize(
    "mutation,seed,checks,rule_prefix",
    CASES, ids=[c[0] for c in CASES],
)
def test_verifier_and_oracle_agree(mutation, seed, checks, rule_prefix):
    clean, mutated = _specialized(seed, mutation)

    # Statically: the verifier is quiet on the clean program and raises
    # error-severity diagnostics on the corrupted one.
    assert not verify_program(clean).errors
    report = verify_program(mutated)
    assert report.errors, f"verifier blind to {mutation}"
    assert any(
        d.rule.startswith(rule_prefix) for d in report.errors
    ), f"expected a {rule_prefix}* rule, got {sorted(report.rules_fired())}"

    # Dynamically: the oracle catches the same corruption at runtime.
    oracle = run_oracle(
        generate_spec(seed), metamorphic=False, inject=mutation,
        use_verdict_cache=False,
    )
    assert oracle.failures, f"oracle blind to {mutation}"
    seen = {f.check for f in oracle.failures}
    assert seen & checks, f"unexpected failure modes {seen}"

    # Agreement recorded on the failure itself: the cross-check found
    # static rules for at least one runtime failure.
    assert any(f.verifier_rules for f in oracle.failures)


def test_eight_slot_ring_mutants_flagged_by_both_layers():
    """Acceptance: an 8-slot circular-buffer program compiles, runs
    clean, and every deep-pipeline mutant is flagged statically (HB
    engine) and dynamically (vector-clock sanitizer)."""
    from dataclasses import replace

    from repro.fexec.machine import run_kernel

    # More tiles than ring slots, so the 8-slot ring wraps and slot
    # reuse is live — the regime the credit protocol must protect.
    kernel = build_kernel(replace(generate_spec(5), iters=12))
    result = WaspCompiler(
        WaspCompilerOptions(pipeline_depth=8, enable_tma_offload=False)
    ).compile(kernel.program, num_warps=kernel.launch.num_warps)
    assert result.specialized
    assert not verify_program(result.program).errors
    launch = replace(
        kernel.launch,
        num_warps=kernel.launch.num_warps * result.num_stages,
    )
    clean = run_kernel(
        result.program, kernel.image_factory(), launch, sanitize=True
    )
    assert clean.races == []
    for mutation in (
        "skip-slot-advance", "depth-off-by-one", "stale-phase-read"
    ):
        mutated = apply_mutation(result.program, mutation)
        assert mutated is not None, f"no {mutation} site at depth 8"
        report = verify_program(mutated)
        assert any(
            d.rule.startswith("WASP-S") for d in report.errors
        ), f"HB engine blind to {mutation} at depth 8"
        run = run_kernel(
            mutated, kernel.image_factory(), launch, sanitize=True
        )
        assert run.races, f"sanitizer blind to {mutation} at depth 8"


def test_mutations_return_none_without_a_site():
    """A streaming kernel without TMA offload has no arrive/wait
    barriers, so the barrier mutation must decline, not crash."""
    kernel = build_kernel(generate_spec(2))
    result = WaspCompiler(
        WaspCompilerOptions(enable_tma_offload=False)
    ).compile(kernel.program, num_warps=kernel.launch.num_warps)
    assert result.specialized
    assert apply_mutation(result.program, "arrive-to-wait") is None


def test_mutations_do_not_modify_the_input():
    kernel = build_kernel(generate_spec(2))
    result = WaspCompiler(
        WaspCompilerOptions(enable_tma_offload=False)
    ).compile(kernel.program, num_warps=kernel.launch.num_warps)
    before = result.program.canonical_encoding()
    for mutation in MUTATIONS:
        apply_mutation(result.program, mutation)
        assert result.program.canonical_encoding() == before


def test_unknown_mutation_rejected():
    kernel = build_kernel(generate_spec(0))
    with pytest.raises(ValueError, match="unknown mutation"):
        apply_mutation(kernel.program, "flip-everything")
