"""Verifier/oracle agreement under deliberate pipeline corruption.

Satellite requirement: corrupting a generated specialized program
(dropping a pop, dropping a push, flipping arrive→wait) must be caught
**twice** — statically by :func:`repro.analysis.verify_program` and
dynamically by the differential oracle.  Disagreement in either
direction is a blind spot.
"""

from __future__ import annotations

import pytest

from repro.analysis import verify_program
from repro.core.compiler import WaspCompiler, WaspCompilerOptions
from repro.fuzz.generator import build_kernel
from repro.fuzz.mutate import MUTATIONS, apply_mutation
from repro.fuzz.oracle import run_oracle
from repro.fuzz.spec import generate_spec

#: (mutation, seed with an applicable site, expected dynamic checks,
#: expected static rule prefix).  Seed skeletons are pinned by the
#: generator determinism tests: 2 = streaming (queue push/pop sites),
#: 7 = tiled (arrive/wait barrier sites under TMA offload).
CASES = [
    ("drop-pop", 2, {"memory-divergence", "queue-balance", "deadlock"},
     "WASP-Q"),
    ("drop-push", 2, {"deadlock", "runtime-crash"}, "WASP-"),
    ("arrive-to-wait", 7, {"deadlock"}, "WASP-D"),
    # The producer's "data ready" signal disappears: the consumer's
    # wait starves (dynamic deadlock) and the happens-before engine
    # loses the ordering edge (WASP-D002 + WASP-S001).
    ("drop-arrive", 7, {"deadlock", "sanitizer-race"}, "WASP-"),
    # One extra generation of barrier credit: nothing deadlocks, so
    # only the SMEM sanitizer can catch it dynamically — and the
    # static side must see the phase overlap (WASP-S004).
    ("phase-off-by-one", 7, {"sanitizer-race"}, "WASP-S"),
]


def _specialized(seed, mutation):
    """First compiled variant with a site for ``mutation``."""
    kernel = build_kernel(generate_spec(seed))
    for options in (
        WaspCompilerOptions(enable_tma_offload=False),
        WaspCompilerOptions(),
    ):
        result = WaspCompiler(options).compile(
            kernel.program, num_warps=kernel.launch.num_warps
        )
        if not result.specialized:
            continue
        mutated = apply_mutation(result.program, mutation)
        if mutated is not None:
            return result.program, mutated
    pytest.fail(f"no {mutation} site in any variant of seed {seed}")


@pytest.mark.parametrize(
    "mutation,seed,checks,rule_prefix",
    CASES, ids=[c[0] for c in CASES],
)
def test_verifier_and_oracle_agree(mutation, seed, checks, rule_prefix):
    clean, mutated = _specialized(seed, mutation)

    # Statically: the verifier is quiet on the clean program and raises
    # error-severity diagnostics on the corrupted one.
    assert not verify_program(clean).errors
    report = verify_program(mutated)
    assert report.errors, f"verifier blind to {mutation}"
    assert any(
        d.rule.startswith(rule_prefix) for d in report.errors
    ), f"expected a {rule_prefix}* rule, got {sorted(report.rules_fired())}"

    # Dynamically: the oracle catches the same corruption at runtime.
    oracle = run_oracle(
        generate_spec(seed), metamorphic=False, inject=mutation,
        use_verdict_cache=False,
    )
    assert oracle.failures, f"oracle blind to {mutation}"
    seen = {f.check for f in oracle.failures}
    assert seen & checks, f"unexpected failure modes {seen}"

    # Agreement recorded on the failure itself: the cross-check found
    # static rules for at least one runtime failure.
    assert any(f.verifier_rules for f in oracle.failures)


def test_mutations_return_none_without_a_site():
    """A streaming kernel without TMA offload has no arrive/wait
    barriers, so the barrier mutation must decline, not crash."""
    kernel = build_kernel(generate_spec(2))
    result = WaspCompiler(
        WaspCompilerOptions(enable_tma_offload=False)
    ).compile(kernel.program, num_warps=kernel.launch.num_warps)
    assert result.specialized
    assert apply_mutation(result.program, "arrive-to-wait") is None


def test_mutations_do_not_modify_the_input():
    kernel = build_kernel(generate_spec(2))
    result = WaspCompiler(
        WaspCompilerOptions(enable_tma_offload=False)
    ).compile(kernel.program, num_warps=kernel.launch.num_warps)
    before = result.program.canonical_encoding()
    for mutation in MUTATIONS:
        apply_mutation(result.program, mutation)
        assert result.program.canonical_encoding() == before


def test_unknown_mutation_rejected():
    kernel = build_kernel(generate_spec(0))
    with pytest.raises(ValueError, match="unknown mutation"):
        apply_mutation(kernel.program, "flip-everything")
