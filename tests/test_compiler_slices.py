"""Backslices, eligibility and the control skeleton (Figure 9 logic)."""

from repro.core.compiler.backslice import address_backslice, full_backslice
from repro.core.compiler.eligibility import Ineligibility, classify_loads
from repro.core.compiler.pdg import build_pdg
from repro.core.compiler.skeleton import compute_skeleton
from repro.isa import Opcode, ProgramBuilder


def test_address_backslice_stops_at_upstream_load():
    """Figure 9: the backslice of LDG B terminates at LDG A."""
    b = ProgramBuilder("p")
    base = b.mov(64)
    a = b.ldg(base)            # LDG A
    shifted = b.iadd(a, 128)   # addr arithmetic fed by A
    scaled = b.imul(shifted, 1)
    v = b.ldg(scaled)          # LDG B
    b.stg(b.mov(256), v)
    b.exit()
    prog = b.finish()
    pdg = build_pdg(prog)
    ldg_b = pdg.global_loads()[1]
    back = address_backslice(pdg, ldg_b)
    opcodes = sorted(i.opcode.value for i in back.instructions)
    assert opcodes == ["IADD", "IMUL"]
    assert {i.opcode for i in back.boundary_loads} == {Opcode.LDG}
    assert len(back.boundary_loads) == 1


def test_full_backslice_traverses_through_loads():
    b = ProgramBuilder("p")
    base = b.mov(64)
    a = b.ldg(base)
    addr = b.iadd(a, 128)
    v = b.ldg(addr)
    b.stg(b.mov(256), v)
    b.exit()
    prog = b.finish()
    pdg = build_pdg(prog)
    ldg_b = pdg.global_loads()[1]
    back = full_backslice(pdg, ldg_b)
    assert any(i.opcode is Opcode.MOV for i in back)  # reached base


def test_lds_in_backslice_is_ineligible():
    b = ProgramBuilder("p")
    b.alloc_smem("buf", 8)
    s = b.lds(b.mov(0))
    addr = b.iadd(s, 64)
    b.stg(b.mov(128), b.ldg(addr))
    b.exit()
    prog = b.finish()
    pdg = build_pdg(prog)
    report = classify_loads(pdg, compute_skeleton(pdg))
    load = pdg.global_loads()[0]
    assert report.reason_for(load) is Ineligibility.LDS_IN_BACKSLICE


def test_pointer_chase_self_cycle_is_ineligible():
    b = ProgramBuilder("p")
    ptr = b.mov(64)
    b.label("chase")
    b.ldg(ptr, dst=ptr)   # ptr = mem[ptr]
    i = b.reg()
    b.iadd(i, 1, dst=i)
    p = b.isetp("lt", i, 4)
    b.bra("chase", guard=p)
    b.label("end")
    b.stg(b.mov(128), ptr)
    b.exit()
    prog = b.finish()
    pdg = build_pdg(prog)
    report = classify_loads(pdg, compute_skeleton(pdg))
    load = pdg.global_loads()[0]
    assert report.reason_for(load) is Ineligibility.SELF_CYCLE


def test_load_feeding_control_is_ineligible():
    """Data-dependent trip counts (CSR row pointers) stay replicated."""
    b = ProgramBuilder("p")
    bound = b.ldg(b.mov(64))
    i = b.mov(0)
    b.label("loop")
    b.iadd(i, 1, dst=i)
    p = b.isetp("lt", i, bound)
    b.bra("loop", guard=p)
    b.label("end")
    b.stg(b.mov(128), i)
    b.exit()
    prog = b.finish()
    pdg = build_pdg(prog)
    skeleton = compute_skeleton(pdg)
    load = pdg.global_loads()[0]
    assert load.uid in skeleton
    report = classify_loads(pdg, skeleton)
    assert report.reason_for(load) is Ineligibility.FEEDS_CONTROL


def test_skeleton_contains_branches_and_their_backslices():
    b = ProgramBuilder("p")
    i = b.mov(0)
    b.label("loop")
    b.ldg(b.iadd(i, 64))  # not part of control
    b.iadd(i, 1, dst=i)
    p = b.isetp("lt", i, 4)
    b.bra("loop", guard=p)
    b.label("end")
    b.exit()
    prog = b.finish()
    pdg = build_pdg(prog)
    skeleton = compute_skeleton(pdg)
    opcode_of = {i.uid: i.opcode for i in prog.instructions()}
    skeleton_ops = {opcode_of[uid] for uid in skeleton}
    assert Opcode.BRA in skeleton_ops
    assert Opcode.ISETP in skeleton_ops
    assert Opcode.IADD in skeleton_ops   # induction update
    assert Opcode.MOV in skeleton_ops    # i = 0
    assert Opcode.LDG not in skeleton_ops
    assert Opcode.EXIT in skeleton_ops


def test_bar_sync_in_skeleton():
    b = ProgramBuilder("p")
    b.bar_sync("tb")
    b.exit()
    prog = b.finish()
    pdg = build_pdg(prog)
    skeleton = compute_skeleton(pdg)
    sync = prog.entry.instructions[0]
    assert sync.uid in skeleton
