"""Property-based tests on core data structures.

Invariants from DESIGN.md: FIFO order and boundedness of queue
channels, monotone non-overlapping bandwidth service, cache accounting,
register-footprint inequalities, and register-compaction correctness.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compiler.regalloc import compact_registers
from repro.core.specs import ThreadBlockSpec, contiguous_stage_assignment
from repro.isa import ProgramBuilder
from repro.sim.caches import BandwidthServer, SectorCache
from repro.sim.queues import QueueChannel


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.one_of(
            st.tuples(st.just("push"), st.floats(0, 1e6)),
            st.tuples(st.just("pop"), st.just(0.0)),
        ),
        max_size=40,
    ),
    st.integers(1, 8),
)
def test_queue_channel_fifo_and_bounded(ops, capacity):
    chan = QueueChannel(0, 0, capacity=capacity)
    model: list[float] = []
    for op, value in ops:
        if op == "push" and chan.can_push():
            chan.push(value)
            model.append(value)
        elif op == "pop" and not chan.is_empty():
            assert chan.pop() == model.pop(0)
        assert chan.occupancy() == len(model)
        assert 0 <= chan.occupancy() <= capacity
        assert chan.is_full() == (len(model) == capacity)
        assert chan.is_empty() == (not model)
        if model:
            assert chan.head_ready_time() == model[0]


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(st.floats(0, 1e5), st.floats(0.1, 16)), min_size=1,
        max_size=40,
    ),
    st.floats(0.05, 8),
)
def test_bandwidth_server_conserves_work(requests, rate):
    server = BandwidthServer(rate)
    total_work = 0.0
    last_finish = 0.0
    for now, work in requests:
        finish = server.submit(now, work)
        total_work += work
        # Service never overlaps and never finishes before its work.
        assert finish >= now + work / rate - 1e-9
        assert finish >= last_finish
        last_finish = finish
    # The server can never report more than 100% utilization.
    assert server.total_work <= rate * (last_finish - 0.0) + 1e-6
    assert 0.0 <= server.utilization(last_finish) <= 1.0


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(0, 500), min_size=1, max_size=300),
    st.integers(1, 64),
    st.integers(1, 8),
)
def test_sector_cache_accounting(accesses, sectors, assoc):
    cache = SectorCache(num_sectors=max(sectors, assoc), assoc=assoc)
    for sector in accesses:
        cache.access(sector)
    assert cache.hits + cache.misses == len(accesses)
    assert 0.0 <= cache.hit_rate() <= 1.0
    # Re-touching the most recent sector always hits.
    cache.access(accesses[-1])
    last = accesses[-1]
    assert cache.access(last) is True


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(1, 4), min_size=1, max_size=6),
    st.lists(st.integers(1, 128), min_size=1, max_size=6),
    st.integers(8, 32),
)
def test_per_stage_footprint_never_exceeds_uniform(
    warp_counts, registers, width
):
    stages = min(len(warp_counts), len(registers))
    warp_counts, registers = warp_counts[:stages], registers[:stages]
    spec = ThreadBlockSpec(
        num_stages=stages,
        warps_per_stage=contiguous_stage_assignment(stages, warp_counts),
        stage_registers=registers,
    )
    per_stage = spec.per_stage_register_footprint(width)
    uniform = spec.uniform_register_footprint(width)
    assert per_stage <= uniform
    assert per_stage >= min(registers) * width * spec.num_warps
    # Slices partition the warps exactly.
    flattened = sorted(w for s in spec.pipeline_slices() for w in s)
    assert flattened == list(range(spec.num_warps))


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(0, 60), min_size=1, max_size=20),
    st.integers(0, 60),
)
def test_register_compaction_dense_and_consistent(indices, extra):
    """Compaction renames sparse registers to a dense prefix while
    preserving the def-use structure (same index -> same index)."""
    from repro.isa.operands import Register

    b = ProgramBuilder("compact")
    prev = None
    for idx in indices:
        reg = Register(idx)
        if prev is None:
            b.mov(1, dst=reg)
        else:
            b.iadd(prev, 1, dst=reg)
        prev = reg
    b.stg(Register(extra), prev)
    b.exit()
    prog = b.finish()

    # Record def-use pattern by position before compaction.
    def pattern(program):
        seen: dict[int, int] = {}
        out = []
        for instr in program.instructions():
            row = []
            for op in instr.used_registers() + instr.defined_registers():
                if op.index not in seen:
                    seen[op.index] = len(seen)
                row.append(seen[op.index])
            out.append(row)
        return out

    before = pattern(prog)
    count = compact_registers(prog)
    after = pattern(prog)
    assert before == after  # renaming preserved structure
    assert prog.max_register_index() == count - 1
    used = {
        r.index
        for i in prog.instructions()
        for r in i.used_registers() + i.defined_registers()
    }
    assert used == set(range(count))
