"""Timing queues (RFQ) and timed barriers."""

import pytest

from repro.errors import SimulationError
from repro.sim.barriers import (
    INFINITY,
    BarrierFile,
    TimedArriveWait,
    TimedSyncBarrier,
)
from repro.sim.config import QueueImpl
from repro.sim.queues import QueueChannel, QueueFile


def test_channel_fifo_order():
    chan = QueueChannel(0, 0, capacity=4)
    chan.push(10.0)
    chan.push(5.0)
    assert chan.head_ready_time() == 10.0
    assert chan.pop() == 10.0
    assert chan.pop() == 5.0


def test_channel_capacity_and_flags():
    chan = QueueChannel(0, 0, capacity=2)
    assert chan.is_empty() and not chan.is_full()
    chan.push(1.0)
    chan.push(1.0)
    assert chan.is_full() and not chan.can_push()
    with pytest.raises(SimulationError):
        chan.push(1.0)
    chan.pop()
    assert chan.can_push()


def test_channel_pop_empty_rejected():
    chan = QueueChannel(0, 0, capacity=1)
    with pytest.raises(SimulationError):
        chan.pop()


def test_channel_has_ready_data_respects_time():
    chan = QueueChannel(0, 0, capacity=2)
    chan.push(100.0)
    assert not chan.has_ready_data(50.0)
    assert chan.has_ready_data(100.0)


def test_queue_file_per_slice_channels():
    qf = QueueFile({0: 8}, QueueImpl.RFQ)
    a = qf.channel(0, 0)
    b = qf.channel(0, 1)
    assert a is not b
    assert qf.channel(0, 0) is a
    assert a.capacity == 8
    assert len(qf.channels()) == 2


def test_arrive_wait_generation_counting():
    barrier = TimedArriveWait("b", expected=2)
    assert barrier.wait_pass_time(0) == INFINITY
    barrier.arrive(10.0)
    barrier.arrive(20.0)
    assert barrier.wait_pass_time(0) == 20.0
    barrier.record_wait(0)
    # Second generation needs four arrivals total.
    assert barrier.wait_pass_time(0) == INFINITY
    barrier.arrive(30.0)
    barrier.arrive(40.0)
    assert barrier.wait_pass_time(0) == 40.0


def test_arrive_wait_initial_credit():
    barrier = TimedArriveWait("b", expected=2, initial_credit=2)
    assert barrier.wait_pass_time(0) == 0.0
    barrier.record_wait(0)
    assert barrier.wait_pass_time(0) == INFINITY


def test_arrive_wait_future_arrivals_sorted():
    barrier = TimedArriveWait("b", expected=1)
    barrier.arrive(50.0)
    barrier.arrive(10.0)  # e.g. a fast TMA completion
    assert barrier.wait_pass_time(0) == 10.0


def test_sync_barrier_releases_at_last_arrival():
    barrier = TimedSyncBarrier("tb", num_warps=2)
    barrier.arrive(0, 5.0)
    assert barrier.pass_time(0) == INFINITY
    barrier.arrive(1, 9.0)
    assert barrier.pass_time(0) == 9.0
    barrier.record_pass(0)
    barrier.record_pass(1)
    # Next phase starts fresh.
    assert barrier.pass_time(0) == INFINITY


def test_sync_barrier_arrival_idempotent_per_phase():
    barrier = TimedSyncBarrier("tb", num_warps=2)
    barrier.arrive(0, 1.0)
    barrier.arrive(0, 2.0)
    assert barrier.pass_time(0) == INFINITY  # still waiting for warp 1


def test_barrier_file_uses_spec_metadata():
    bf = BarrierFile(
        num_warps=4, expected={"f": 3}, initial={"f": 3}
    )
    barrier = bf.arrive_wait("f")
    assert barrier.expected == 3
    assert barrier.initial_credit == 3
    assert bf.arrive_wait("f") is barrier
    sync = bf.sync("tb")
    assert sync.num_warps == 4
