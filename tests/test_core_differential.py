"""Reference-vs-event core differential: the exactness contract.

Tier-1 coverage for :mod:`repro.sim.differential` — small canonical
kernels, a fuzz-spec sample, a registry sample, and failure parity.
CI's ``core-differential`` job runs the full corpus + registry via
``repro corediff``; these tests keep the contract enforced on every
push without that job's runtime.
"""

from __future__ import annotations

import pytest

from repro.fexec import run_kernel
from repro.fuzz.spec import generate_spec
from repro.sim.differential import (
    diff_registry_kernel,
    diff_spec,
    diff_traces,
    differential_gpus,
)
from repro.sim.config import baseline_a100, wasp_gpu


def _traces(program, image_factory, launch):
    return run_kernel(program, image_factory(), launch).traces


def _assert_all_ok(diffs):
    bad = [d for d in diffs if not d.ok]
    assert not bad, "\n".join(
        line for d in bad for line in d.mismatches
    )
    assert diffs, "differential compared nothing"


@pytest.mark.parametrize("setup_name", [
    "stream_setup", "gather_setup", "tile_setup",
])
def test_canonical_kernels_bit_identical(setup_name, request):
    program, image_factory, launch, _ = request.getfixturevalue(setup_name)
    traces = _traces(program, image_factory, launch)
    diffs = [
        diff_traces(traces, gpu, f"{setup_name}:{i}")
        for i, gpu in enumerate(differential_gpus())
    ]
    _assert_all_ok(diffs)
    # The comparison is non-vacuous: real cycles were simulated.
    assert all(d.ref_cycles > 0 for d in diffs)


def test_fuzz_spec_sample_bit_identical():
    """Two specs x (plain + specializations) x the GPU matrix."""
    for seed in (0, 7):
        _assert_all_ok(diff_spec(generate_spec(seed)))


def test_registry_sample_bit_identical():
    from repro.experiments.configs import standard_configs
    from repro.workloads.registry import get_benchmark

    bench = get_benchmark("pointnet", scale=0.125)
    config = next(
        c for c in standard_configs() if c.name == "WASP_GPU"
    )
    diffs = []
    for kernel in bench.kernels:
        diffs.extend(diff_registry_kernel(kernel, config))
    _assert_all_ok(diffs)


def test_deadlock_parity_counts_as_ok():
    """Both cores must fail identically — and that parity is ok=True."""
    from repro.fexec.trace import DynamicInstr, KernelTrace, WarpTrace
    from repro.isa.opcodes import FuncUnit, InstrCategory, Opcode

    pop = DynamicInstr(
        opcode=Opcode.MOV, unit=FuncUnit.INT,
        category=InstrCategory.QUEUE, dst_regs=(0,), queue_pop=0,
    )
    trace = KernelTrace(
        kernel_name="dead", num_warps=1, warp_width=8,
        warps=[WarpTrace(warp_id=0, pipe_stage_id=0, instrs=[pop])],
    )
    for gpu in (baseline_a100(), wasp_gpu()):
        diff = diff_traces([trace], gpu, "deadlock")
        assert diff.ok, diff.mismatches
        # Neither core produced cycles: both raised.
        assert diff.ref_cycles == 0.0 and diff.event_cycles == 0.0


def test_mismatch_is_reported_not_swallowed(monkeypatch, stream_setup):
    """A doctored event core must produce a labelled mismatch."""
    import repro.sim.gpu as gpu_mod
    from repro.sim.sm_event import EventSMSimulator

    class _BrokenEventCore(EventSMSimulator):
        def run(self):
            stats = super().run()
            stats.cycles += 1.0  # the kind of drift the gate exists for
            return stats

    monkeypatch.setitem(gpu_mod._CORES, "event", _BrokenEventCore)
    program, image_factory, launch, _ = stream_setup
    traces = _traces(program, image_factory, launch)
    diff = diff_traces(traces, wasp_gpu(), "doctored")
    assert not diff.ok
    assert any("cycles" in line for line in diff.mismatches)
