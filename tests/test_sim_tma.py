"""TMA engine: pacing, back-pressure, two-phase gathers, barriers."""

from repro.sim.barriers import INFINITY, TimedArriveWait
from repro.sim.config import GPUConfig
from repro.sim.memory import MemorySystem
from repro.sim.queues import QueueChannel
from repro.sim.tma import TmaEngine


def _engine():
    config = GPUConfig()
    memory = MemorySystem(config)
    return TmaEngine(config, memory), memory


def _stream_job(vectors: int):
    return {
        "mode": "stream",
        "vector_sectors": [(k,) for k in range(vectors)],
        "data_vector_sectors": None,
        "smem_words": 0,
    }


def test_stream_job_fills_channel():
    engine, _ = _engine()
    chan = QueueChannel(0, 0, capacity=16)
    engine.submit(0.0, _stream_job(8), chan, None)
    engine.advance(100.0)
    assert chan.occupancy() == 8
    assert engine.vectors_issued == 8
    assert not engine.busy()


def test_pacing_by_issue_rate():
    engine, _ = _engine()
    chan = QueueChannel(0, 0, capacity=16)
    engine.submit(0.0, _stream_job(8), chan, None)
    engine.advance(3.0)  # rate 1/cycle: only vectors at t=0..3 issue
    assert engine.vectors_issued == 4
    assert engine.next_event_time() == 4.0


def test_full_queue_backpressures_engine():
    engine, _ = _engine()
    chan = QueueChannel(0, 0, capacity=2)
    engine.submit(0.0, _stream_job(8), chan, None)
    engine.advance(100.0)
    assert chan.occupancy() == 2
    assert engine.busy()
    chan.pop()
    chan.pop()
    engine.advance(200.0)
    assert chan.occupancy() == 2  # two more issued
    assert engine.vectors_issued == 4


def test_gather_two_phase_ordering():
    engine, memory = _engine()
    chan = QueueChannel(0, 0, capacity=16)
    job = {
        "mode": "gather",
        "vector_sectors": [(1,)],
        "data_vector_sectors": [(2, 3)],
        "smem_words": 0,
    }
    engine.submit(0.0, job, chan, None)
    engine.advance(0.0)
    # Phase 1 issued; entry not yet pushed (data pending).
    assert chan.occupancy() == 0
    assert engine.next_event_time() < INFINITY
    engine.advance(engine.next_event_time())
    assert chan.occupancy() == 1
    # The entry's ready time includes both dependent fetch phases.
    assert chan.head_ready_time() > 2 * memory.config.dram_latency


def test_gather_reserves_entries_during_phase2():
    engine, _ = _engine()
    chan = QueueChannel(0, 0, capacity=2)
    job = {
        "mode": "gather",
        "vector_sectors": [(k,) for k in range(4)],
        "data_vector_sectors": [(10 + k,) for k in range(4)],
        "smem_words": 0,
    }
    engine.submit(0.0, job, chan, None)
    engine.advance(10.0)
    # Only two phase-1 requests may be outstanding (capacity 2).
    assert engine.vectors_issued == 2


def test_tile_job_arrives_barrier_at_completion():
    engine, _ = _engine()
    barrier = TimedArriveWait("filled", expected=1)
    job = {
        "mode": "tile",
        "vector_sectors": [(k,) for k in range(4)],
        "data_vector_sectors": None,
        "smem_words": 64,
    }
    engine.submit(0.0, job, None, barrier.arrive)
    engine.advance(1_000_000.0)
    assert len(barrier.arrival_times) == 1
    assert barrier.arrival_times[0] > 0


def test_empty_job_completes_immediately():
    engine, _ = _engine()
    barrier = TimedArriveWait("filled", expected=1)
    job = {
        "mode": "tile", "vector_sectors": [],
        "data_vector_sectors": None, "smem_words": 0,
    }
    engine.submit(5.0, job, None, barrier.arrive)
    assert barrier.arrival_times == [5.0]
    assert not engine.busy()


def test_idle_engine_next_event_is_infinite():
    engine, _ = _engine()
    assert engine.next_event_time() == INFINITY
