"""Operand semantics: identity, hashing, rendering."""

from repro.isa import (
    Immediate,
    Predicate,
    QueueRef,
    Register,
    SpecialReg,
    SpecialRegister,
)


def test_register_equality_and_hash():
    assert Register(3) == Register(3)
    assert Register(3) != Register(4)
    assert len({Register(1), Register(1), Register(2)}) == 2


def test_register_and_predicate_are_distinct_kinds():
    assert Register(0) != Predicate(0)


def test_queue_ref_repr_and_identity():
    assert repr(QueueRef(2)) == "Q2"
    assert QueueRef(2) == QueueRef(2)
    assert QueueRef(2) != QueueRef(3)


def test_immediate_holds_int_and_float():
    assert Immediate(5).value == 5
    assert Immediate(2.5).value == 2.5
    assert Immediate(5) != Immediate(6)


def test_special_register_repr_uses_sass_names():
    assert repr(SpecialRegister(SpecialReg.LANE_ID)) == "SR_LANEID"
    assert repr(SpecialRegister(SpecialReg.PIPE_STAGE_ID)) == "SR_PIPESTAGE"


def test_operands_usable_as_dict_keys():
    table = {Register(0): "a", Predicate(0): "b", QueueRef(0): "c"}
    assert table[Register(0)] == "a"
    assert table[Predicate(0)] == "b"
    assert table[QueueRef(0)] == "c"
