"""Occupancy computation: limits and WASP per-stage register effects."""

import pytest
from dataclasses import replace

from repro.core.specs import NamedQueueSpec, ThreadBlockSpec
from repro.errors import ResourceError
from repro.sim.config import GPUConfig, QueueImpl
from repro.sim.occupancy import compute_occupancy


def _spec(stage_regs=(8, 32), queue_size=32):
    return ThreadBlockSpec(
        num_stages=2,
        warps_per_stage=[[0, 1], [2, 3]],
        stage_registers=list(stage_regs),
        queues=[NamedQueueSpec(0, 0, 1, size=queue_size)],
    )


def test_plain_kernel_register_limit():
    config = GPUConfig()
    occ = compute_occupancy(
        config, None, num_warps=4, program_registers=64,
        smem_words=0, warp_width=32,
    )
    # 64 regs * 32 threads * 4 warps = 8192 words; 65536/8192 = 8.
    assert occ.max_resident_tbs == 8
    assert occ.limited_by == "registers"


def test_warp_slot_limit():
    config = GPUConfig()
    occ = compute_occupancy(
        config, None, num_warps=16, program_registers=4,
        smem_words=0, warp_width=32,
    )
    assert occ.max_resident_tbs == 4
    assert occ.limited_by == "warp_slots"


def test_smem_limit():
    config = GPUConfig()
    occ = compute_occupancy(
        config, None, num_warps=1, program_registers=1,
        smem_words=config.smem_capacity_words // 2, warp_width=32,
    )
    assert occ.max_resident_tbs == 2
    assert occ.limited_by == "smem"


def test_per_stage_allocation_increases_occupancy():
    spec = _spec(stage_regs=(8, 32))
    base = GPUConfig()
    wasp = replace(
        base,
        features=replace(base.features, per_stage_registers=True,
                         queue_impl=QueueImpl.RFQ),
    )
    base_rfq = replace(
        base, features=replace(base.features, queue_impl=QueueImpl.RFQ)
    )
    occ_uniform = compute_occupancy(
        base_rfq, spec, num_warps=4, program_registers=32,
        smem_words=0, warp_width=32,
    )
    occ_per_stage = compute_occupancy(
        wasp, spec, num_warps=4, program_registers=32,
        smem_words=0, warp_width=32,
    )
    assert (
        occ_per_stage.register_words_per_tb
        < occ_uniform.register_words_per_tb
    )
    assert occ_per_stage.max_resident_tbs >= occ_uniform.max_resident_tbs


def test_queue_storage_location_depends_on_impl():
    spec = _spec()
    base = GPUConfig()
    rfq_cfg = replace(
        base, features=replace(base.features, queue_impl=QueueImpl.RFQ)
    )
    occ_smem = compute_occupancy(
        base, spec, num_warps=4, program_registers=32,
        smem_words=128, warp_width=32,
    )
    occ_rfq = compute_occupancy(
        rfq_cfg, spec, num_warps=4, program_registers=32,
        smem_words=128, warp_width=32,
    )
    assert occ_smem.smem_words_per_tb > occ_rfq.smem_words_per_tb
    assert occ_rfq.register_words_per_tb > occ_smem.register_words_per_tb


def test_kernel_too_big_raises():
    config = GPUConfig()
    with pytest.raises(ResourceError):
        compute_occupancy(
            config, None, num_warps=4,
            program_registers=100_000, smem_words=0, warp_width=32,
        )


def test_tb_slot_cap():
    config = replace(GPUConfig(), max_resident_tbs=2)
    occ = compute_occupancy(
        config, None, num_warps=1, program_registers=1,
        smem_words=0, warp_width=32,
    )
    assert occ.max_resident_tbs == 2
