"""Property-based round-trip tests for the ISA JSON serializer.

Satellite requirement: seeded stdlib ``random`` only (no third-party
property-testing dependency).  The properties:

* ``decode(encode(v))`` is structurally equal to ``v``;
* ``encode(decode(doc)) == doc`` — encoding is idempotent, so stored
  documents never drift when rewritten.

Random instances cover every operand kind and every opcode (with the
structural requirements — branch targets, barrier ids — satisfied).
"""

from __future__ import annotations

import json
import random

import pytest

from repro.errors import IsaError
from repro.fuzz.generator import build_kernel
from repro.fuzz.spec import generate_spec
from repro.core.compiler import WaspCompiler, WaspCompilerOptions
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode, opcode_info
from repro.isa.operands import (
    Immediate,
    Predicate,
    QueueRef,
    Register,
    SpecialReg,
    SpecialRegister,
)
from repro.isa.serialize import (
    decode_instruction,
    decode_operand,
    decode_program,
    encode_instruction,
    encode_operand,
    encode_program,
)

NUM_CASES = 200


def random_operand(rng: random.Random):
    kind = rng.randrange(5)
    if kind == 0:
        return Register(rng.randrange(256))
    if kind == 1:
        return Predicate(rng.randrange(8))
    if kind == 2:
        if rng.random() < 0.5:
            return Immediate(rng.randint(-(2 ** 31), 2 ** 31))
        return Immediate(rng.choice([0.0, -1.5, 0.5, 3.25, 1e30]))
    if kind == 3:
        return QueueRef(rng.randrange(8))
    return SpecialRegister(rng.choice(list(SpecialReg)))


def random_instruction(rng: random.Random) -> Instruction:
    opcode = rng.choice(list(Opcode))
    info = opcode_info(opcode)
    kwargs = {}
    if info.is_branch:
        kwargs["target"] = f"L{rng.randrange(16)}"
    if info.is_barrier:
        kwargs["barrier_id"] = f"bar{rng.randrange(4)}"
    if rng.random() < 0.3:
        kwargs["guard"] = Predicate(rng.randrange(8))
        kwargs["guard_negated"] = rng.random() < 0.5
    if rng.random() < 0.25:
        kwargs["attrs"] = {
            "buffer": f"buf{rng.randrange(3)}",
            "vec_stride": rng.randrange(1, 64),
        }
    return Instruction(
        opcode=opcode,
        dst=random_operand(rng) if rng.random() < 0.8 else None,
        srcs=[random_operand(rng) for _ in range(rng.randrange(4))],
        **kwargs,
    )


def test_operand_round_trip_random():
    rng = random.Random(0xC0FFEE)
    for _ in range(NUM_CASES):
        op = random_operand(rng)
        doc = encode_operand(op)
        assert decode_operand(doc) == op
        assert encode_operand(decode_operand(doc)) == doc
        # Survives an actual JSON text round trip too.
        assert decode_operand(json.loads(json.dumps(doc))) == op


def test_none_operand_round_trips():
    assert encode_operand(None) is None
    assert decode_operand(None) is None


def test_instruction_round_trip_random():
    rng = random.Random(0xDECADE)
    for _ in range(NUM_CASES):
        instr = random_instruction(rng)
        doc = encode_instruction(instr)
        back = decode_instruction(json.loads(json.dumps(doc)))
        assert back.opcode is instr.opcode
        assert back.dst == instr.dst
        assert back.srcs == instr.srcs
        assert back.guard == instr.guard
        assert back.guard_negated == instr.guard_negated
        assert back.target == instr.target
        assert back.barrier_id == instr.barrier_id
        assert back.attrs == instr.attrs
        assert back.category is instr.category
        # encode∘decode is the identity on documents.
        assert encode_instruction(back) == doc


def test_instruction_encoding_omits_defaults():
    doc = encode_instruction(
        Instruction(Opcode.IADD, dst=Register(0),
                    srcs=[Register(1), Immediate(2)])
    )
    assert set(doc) == {"opcode", "dst", "srcs"}


def test_decode_rejects_unknown_operand_kind():
    with pytest.raises(IsaError, match="unknown operand kind"):
        decode_operand({"kind": "banana"})


def test_decode_rejects_non_numeric_immediate():
    with pytest.raises(IsaError, match="not a number"):
        decode_operand({"kind": "imm", "value": "7"})


def test_decode_rejects_non_predicate_guard():
    doc = encode_instruction(
        Instruction(Opcode.IADD, dst=Register(0), srcs=[Register(1)])
    )
    doc["guard"] = {"kind": "reg", "index": 3}
    with pytest.raises(IsaError, match="guard must be a predicate"):
        decode_instruction(doc)


def test_program_round_trip_generated_kernels():
    """Whole generated programs — baseline and warp-specialized —
    survive encode→decode→encode with canonical encodings intact."""
    for seed in range(12):
        kernel = build_kernel(generate_spec(seed))
        result = WaspCompiler(WaspCompilerOptions()).compile(
            kernel.program, num_warps=kernel.launch.num_warps
        )
        programs = [kernel.program]
        if result.specialized:
            programs.append(result.program)
        for program in programs:
            doc = encode_program(program)
            back = decode_program(json.loads(json.dumps(doc)))
            assert (back.canonical_encoding()
                    == program.canonical_encoding())
            assert encode_program(back) == doc


def test_program_round_trip_preserves_tb_spec():
    kernel = build_kernel(generate_spec(2))
    result = WaspCompiler(WaspCompilerOptions()).compile(
        kernel.program, num_warps=kernel.launch.num_warps
    )
    assert result.specialized
    back = decode_program(encode_program(result.program))
    spec, orig = back.tb_spec, result.program.tb_spec
    assert spec.num_stages == orig.num_stages
    assert spec.warps_per_stage == orig.warps_per_stage
    assert spec.stage_registers == orig.stage_registers
    assert [
        (q.queue_id, q.src_stage, q.dst_stage, q.size) for q in spec.queues
    ] == [
        (q.queue_id, q.src_stage, q.dst_stage, q.size) for q in orig.queues
    ]
    assert spec.barrier_expected == orig.barrier_expected
    assert spec.barrier_initial == orig.barrier_initial


def test_program_round_trip_deep_pipeline():
    """A deep circular-buffer program (8-slot ring, per-slot phase
    barriers and ``__db{k}`` buffer copies) survives the round trip
    with its canonical encoding and ring metadata intact."""
    kernel = build_kernel(generate_spec(5))  # every sixth seed is deep
    result = WaspCompiler(
        WaspCompilerOptions(pipeline_depth=8, enable_tma_offload=False)
    ).compile(kernel.program, num_warps=kernel.launch.num_warps)
    assert result.specialized
    doc = encode_program(result.program)
    back = decode_program(json.loads(json.dumps(doc)))
    assert back.canonical_encoding() == result.program.canonical_encoding()
    assert encode_program(back) == doc
    # The per-slot ring state is part of the round trip: all eight
    # phase-letter empty barriers and the slot-1..7 buffer copies.
    empties = {b for b in back.tb_spec.barrier_expected
               if b.endswith("_empty")}
    assert {f"tile0_{letter}_empty" for letter in "ABCDEFGH"} <= empties
    assert back.tb_spec.barrier_initial == result.program.tb_spec.barrier_initial
    copies = {name for name in back.smem_buffers if "__db" in name}
    assert len(copies) >= 7


def test_decode_rejects_wrong_version():
    doc = encode_program(build_kernel(generate_spec(0)).program)
    doc["version"] = 999
    with pytest.raises(IsaError, match="version"):
        decode_program(doc)
