"""Pipeline profiler: stall attribution, queue occupancy, Chrome trace.

The load-bearing property is the accounting invariant — every active
warp-cycle is attributed to exactly one issue or one stall cause::

    sum(stall_cycles over (stage, cause)) + issued_total
        == active_warp_cycles

checked here over several registry workloads under both the baseline
and the WASP configurations.  The profiler must also never perturb
timing: a profiled replay reports the same cycle count as the
unprofiled run.
"""

import json

import pytest

from repro.experiments.configs import (
    baseline_config,
    standard_configs,
    wasp_gpu_config,
)
from repro.experiments.runner import TraceCache, profile_kernel
from repro.profiling import (
    PipelineProfiler,
    StallCause,
    TIMELINE_BUCKET,
    build_chrome_trace,
    validate_chrome_trace,
)
from repro.profiling import report as profreport
from repro.sim.gpu import simulate_kernel
from repro.workloads import get_benchmark

SCALE = 0.1
INVARIANT_WORKLOADS = ["pointnet", "spmv1_g3", "lonestar_bfs", "bert"]

_CACHE = TraceCache()


def _first_kernel(name):
    return get_benchmark(name, SCALE).kernels[0]


def _traces(name):
    return _CACHE.original(_first_kernel(name)).traces


# -- stall attribution invariant (all counters always on) -------------------


@pytest.mark.parametrize("workload", INVARIANT_WORKLOADS)
@pytest.mark.parametrize(
    "config", standard_configs(), ids=lambda c: c.name
)
def test_stall_invariant(workload, config):
    sim = simulate_kernel(_traces(workload), config.gpu)
    assert sim.active_warp_cycles > 0
    assert sim.stall_total + sim.issued_total == pytest.approx(
        sim.active_warp_cycles, rel=1e-9
    )


def test_stall_causes_present_and_nonnegative():
    sim = simulate_kernel(_traces("pointnet"), baseline_config().gpu)
    assert sim.stall_cycles, "a real workload must record some stalls"
    for (stage, cause), cycles in sim.stall_cycles.items():
        assert isinstance(stage, int)
        assert isinstance(cause, StallCause)
        assert cycles > 0
    rollup = sim.stall_by_cause()
    assert sum(rollup.values()) == pytest.approx(sim.stall_total)
    assert 0.0 <= sim.stall_fraction(StallCause.SCOREBOARD) <= 1.0


def test_specialized_kernel_records_queue_stalls():
    result, _prof = profile_kernel(
        _first_kernel("pointnet"), wasp_gpu_config(), cache=_CACHE
    )
    if not result.used_specialized:
        pytest.skip("pointnet did not specialize at this scale")
    causes = set(result.sim.stall_by_cause())
    assert causes & {StallCause.QUEUE_EMPTY, StallCause.QUEUE_FULL}


# -- profiling must not perturb timing --------------------------------------


@pytest.mark.parametrize("config", [baseline_config(), wasp_gpu_config()],
                         ids=lambda c: c.name)
def test_profiled_replay_matches_unprofiled(config):
    traces = _traces("pointnet")
    bare = simulate_kernel(traces, config.gpu)
    profiled = simulate_kernel(
        traces, config.gpu, profiler=PipelineProfiler()
    )
    assert profiled.cycles == bare.cycles
    assert profiled.issued_total == bare.issued_total
    assert profiled.stall_cycles == bare.stall_cycles


# -- satellite 1: the timeline covers the memory drain tail -----------------


def test_timeline_covers_drain_tail():
    """The bucketed timeline's time axis must reach the cycle count.

    Kernel completion waits for stores to drain through the bandwidth
    servers; the summarized timeline used to end at the last bucket
    with issue activity, silently dropping that tail from Figure 3.
    """
    for config in (baseline_config(), wasp_gpu_config()):
        sim = simulate_kernel(_traces("pointnet"), config.gpu)
        assert sim.timeline, "timeline must not be empty"
        times = [t for t, _c, _m in sim.timeline]
        # Contiguous buckets from zero...
        assert times == [i * TIMELINE_BUCKET for i in range(len(times))]
        # ...reaching the final cycle (drain included).
        assert times[-1] + TIMELINE_BUCKET >= sim.cycles


# -- queue occupancy --------------------------------------------------------


def test_queue_profiles_consistency():
    result, profiler = profile_kernel(
        _first_kernel("pointnet"), wasp_gpu_config(), cache=_CACHE
    )
    profiles = result.sim.queue_profiles
    if not profiles:
        pytest.skip("kernel has no queues under this configuration")
    for prof in profiles:
        assert prof.capacity > 0
        assert prof.pushes >= prof.pops
        assert 0.0 <= prof.mean_depth() <= prof.capacity
        assert prof.max_depth() <= prof.capacity
        assert 0.0 <= prof.full_fraction() <= 1.0
        assert 0.0 <= prof.empty_fraction() <= 1.0
        # Depth histogram spans [first event, end of run].
        assert prof.observed_cycles <= result.sim.cycles + 1e-9
        # The bucketed series agrees with the histogram's total mass.
        if prof.series:
            assert all(
                0.0 <= mean <= prof.capacity and mx <= prof.capacity
                for _t, mean, mx in prof.series
            )


# -- event trace ring buffer ------------------------------------------------


def test_ring_buffer_drops_oldest_beyond_capacity():
    traces = _traces("pointnet")
    small = PipelineProfiler(trace_capacity=64)
    simulate_kernel(traces, baseline_config().gpu, profiler=small)
    assert small.events_recorded > 64
    assert len(small.events) == 64
    assert small.dropped_events == small.events_recorded - 64

    big = PipelineProfiler()
    simulate_kernel(traces, baseline_config().gpu, profiler=big)
    assert big.dropped_events == 0
    assert big.events_recorded == small.events_recorded


def test_trace_disabled_records_nothing():
    prof = PipelineProfiler(trace_events=False)
    simulate_kernel(_traces("pointnet"), baseline_config().gpu,
                    profiler=prof)
    assert prof.events_recorded == 0
    assert len(prof.events) == 0


# -- Chrome trace export ----------------------------------------------------


def _profiled(config):
    prof = PipelineProfiler()
    simulate_kernel(_traces("pointnet"), config.gpu, profiler=prof)
    return prof


def test_chrome_trace_valid_and_loads_as_json(tmp_path):
    from repro.profiling.chrometrace import write_chrome_trace

    path = tmp_path / "trace.json"
    trace = write_chrome_trace(
        str(path), [("pointnet", _profiled(wasp_gpu_config()))]
    )
    assert validate_chrome_trace(trace) == []
    reloaded = json.loads(path.read_text())
    assert reloaded["displayTimeUnit"] == "ms"
    events = reloaded["traceEvents"]
    assert events
    slices = [e for e in events if e["ph"] == "X"]
    assert slices, "trace must contain complete slices"
    for ev in slices:
        assert {"name", "pid", "tid", "ts", "dur"} <= set(ev)
    # Warp tracks are named via metadata events.
    names = [e for e in events if e["ph"] == "M"
             and e["name"] == "thread_name"]
    assert any("warp" in e["args"]["name"] for e in names)


def test_chrome_trace_multi_section_pids_disjoint():
    a = _profiled(baseline_config())
    b = _profiled(wasp_gpu_config())
    trace = build_chrome_trace([("base", a), ("wasp", b)])
    assert validate_chrome_trace(trace) == []
    # Events of different sections must not share pids.
    pids = {}
    for ev in trace["traceEvents"]:
        section = "a" if ev["pid"] < 2_000_000 else "b"
        pids.setdefault(section, set()).add(ev["pid"])
    assert pids["a"].isdisjoint(pids["b"])


def test_validate_rejects_malformed_traces():
    assert validate_chrome_trace([]) != []
    assert validate_chrome_trace({}) != []
    assert validate_chrome_trace(
        {"displayTimeUnit": "ms", "traceEvents": [{"ph": "X"}]}
    ) != []
    missing_dur = {
        "displayTimeUnit": "ms",
        "traceEvents": [
            {"name": "x", "ph": "X", "pid": 0, "tid": 0, "ts": 1.0}
        ],
    }
    assert any("dur" in e for e in validate_chrome_trace(missing_dur))


# -- report rendering -------------------------------------------------------


def test_stall_breakdown_text_states_invariant():
    sim = simulate_kernel(_traces("pointnet"), baseline_config().gpu)
    text = profreport.profile_text(sim)
    assert "Where warp-cycles went" in text
    assert f"active warp-cycles: {sim.active_warp_cycles:.0f}" in text
    assert f"{sim.issued_total} issued" in text


def test_profile_json_is_json_serializable():
    result, _prof = profile_kernel(
        _first_kernel("pointnet"), wasp_gpu_config(), cache=_CACHE
    )
    doc = profreport.profile_json(result.sim, config_name="WASP_GPU")
    text = json.dumps(doc)
    parsed = json.loads(text)
    assert parsed["schema"] == "repro-profile-v1"
    total = sum(parsed["stalls_by_cause"].values())
    assert total + parsed["issued_total"] == pytest.approx(
        parsed["active_warp_cycles"]
    )


def test_profile_kernel_timing_matches_run_kernel():
    from repro.experiments.runner import run_kernel

    kernel = _first_kernel("pointnet")
    config = wasp_gpu_config()
    plain = run_kernel(kernel, config, _CACHE)
    profiled, profiler = profile_kernel(kernel, config, cache=_CACHE)
    assert profiled.cycles == plain.cycles
    assert profiled.used_specialized == plain.used_specialized
    assert profiler.events_recorded > 0
