"""Property tests for the translation validator (Hypothesis).

Two invariances the certificate machinery must have to be trustworthy:

* **Serializer round-trip**: effect summaries — and therefore verdicts
  — are functions of program *meaning*, so encoding a program through
  :mod:`repro.isa.serialize` (including a JSON text round-trip) and
  decoding it back must produce bit-identical summaries.
* **Normalization**: a :class:`DiagnosticReport` is a set of findings,
  not a narrative; ``normalized()`` output must not depend on the
  order diagnostics were discovered in.
"""

from __future__ import annotations

import functools
import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.diagnostics import DiagnosticReport
from repro.analysis.transval import validate_programs
from repro.analysis.transval.effects import Summary, summarize_program
from repro.analysis.transval.expr import stable_repr
from repro.core.compiler import WaspCompiler, WaspCompilerOptions
from repro.fuzz.generator import build_kernel
from repro.fuzz.mutate import apply_mutation
from repro.fuzz.spec import generate_spec
from repro.isa.serialize import decode_program, encode_program


def _round_trip(program):
    """Serializer round trip through actual JSON text."""
    return decode_program(json.loads(json.dumps(encode_program(program))))


def _fingerprint(summary: Summary) -> tuple:
    """Order-preserving structural digest of everything matchable."""
    effects = tuple(
        (
            stable_repr(e.addr),
            stable_repr(e.value),
            stable_repr(e.guard) if e.guard is not None else None,
            e.path,
            e.ring,
            e.stage,
        )
        for e in summary.effects
    )
    loops = tuple(
        (
            key,
            info.base,
            info.path,
            info.depth,
            tuple(stable_repr(x) for x in info.rec_inits),
            tuple(
                tuple(stable_repr(x) for x in copy)
                for copy in info.rec_deltas
            ),
            tuple(stable_repr(x) for x in info.cont_conds),
        )
        for key, info in sorted(summary.loops.items())
    )
    abst = tuple(str(a) for a in summary.abstentions)
    return (summary.side, effects, loops, abst)


@functools.lru_cache(maxsize=None)
def _compiled(seed: int):
    kernel = build_kernel(generate_spec(seed))
    result = WaspCompiler(WaspCompilerOptions(
        enable_tma_offload=False, verify=False, validate=False,
    )).compile(kernel.program, kernel.launch.num_warps)
    return kernel.program, result


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=60))
def test_summaries_invariant_under_serializer_round_trip(seed):
    source, result = _compiled(seed)

    assert _fingerprint(
        summarize_program(source, side="source")
    ) == _fingerprint(
        summarize_program(_round_trip(source), side="source")
    )

    if result.specialized:
        assert _fingerprint(
            summarize_program(result.program, side="specialized")
        ) == _fingerprint(
            summarize_program(
                _round_trip(result.program), side="specialized"
            )
        )


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=60))
def test_verdict_invariant_under_serializer_round_trip(seed):
    source, result = _compiled(seed)
    direct = validate_programs(source, result.program)
    round_tripped = validate_programs(
        _round_trip(source), _round_trip(result.program)
    )
    assert direct.verdict == round_tripped.verdict
    assert direct.report.rules_fired() == round_tripped.report.rules_fired()


@functools.lru_cache(maxsize=None)
def _mutant_diagnostics() -> tuple:
    """Diagnostics from a known not-equivalent validation."""
    source, result = _compiled(2)
    assert result.specialized
    mutated = apply_mutation(result.program, "drop-pop")
    assert mutated is not None
    report = validate_programs(source, mutated)
    assert report.verdict == "not-equivalent"
    assert len(report.report.diagnostics) >= 2
    return tuple(report.report.diagnostics)


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_normalized_report_invariant_under_shuffling(data):
    diags = list(_mutant_diagnostics())
    shuffled = data.draw(st.permutations(diags))
    baseline = DiagnosticReport(list(diags)).normalized()
    reordered = DiagnosticReport(list(shuffled)).normalized()
    assert baseline.diagnostics == reordered.diagnostics
    assert baseline.rules_fired() == reordered.rules_fired()
