"""The differential oracle: catches nothing on a healthy compiler,
caches passing verdicts, and never caches injected corruptions."""

from __future__ import annotations

import pytest

from repro.experiments.runner import GLOBAL_CACHE
from repro.fexec.trace_store import TraceStore
from repro.fuzz.oracle import (
    OPTION_SETS,
    FuzzFailure,
    run_oracle,
    verdict_key,
)
from repro.fuzz.generator import build_kernel
from repro.fuzz.spec import generate_spec


@pytest.fixture
def tmp_cache(tmp_path):
    """Point the global cache at a private disk store, then restore."""
    saved = GLOBAL_CACHE.store
    GLOBAL_CACHE.store = TraceStore(str(tmp_path / "cache"))
    try:
        yield GLOBAL_CACHE.store
    finally:
        GLOBAL_CACHE.store = saved


@pytest.mark.parametrize("seed", list(range(10)))
def test_healthy_compiler_passes(seed):
    report = run_oracle(
        generate_spec(seed), metamorphic=False, use_verdict_cache=False
    )
    assert report.passed, [f.summary() for f in report.failures]
    # Every option set both compiles and specializes these kernels.
    assert set(report.specialized_under) == {n for n, _o in OPTION_SETS}


def test_verdict_cached_on_pass(tmp_cache):
    spec = generate_spec(3)
    first = run_oracle(spec, metamorphic=False)
    assert first.passed and not first.from_cache
    second = run_oracle(spec, metamorphic=False)
    assert second.passed and second.from_cache
    assert second.specialized_under == first.specialized_under


def test_verdict_key_separates_metamorphic_mode(tmp_cache):
    kernel = build_kernel(generate_spec(3))
    assert verdict_key(kernel, True) != verdict_key(kernel, False)


def test_injected_runs_never_touch_the_cache(tmp_cache):
    spec = generate_spec(3)
    broken = run_oracle(spec, metamorphic=False, inject="drop-push")
    assert not broken.passed and not broken.from_cache
    # The injected failure must not have poisoned the verdict cache...
    clean = run_oracle(spec, metamorphic=False)
    assert clean.passed and not clean.from_cache
    # ...and a pass verdict must not leak back into injected runs.
    broken_again = run_oracle(spec, metamorphic=False, inject="drop-push")
    assert not broken_again.passed and not broken_again.from_cache


def test_failures_cross_checked_against_verifier():
    report = run_oracle(
        generate_spec(3), metamorphic=False, inject="drop-push",
        use_verdict_cache=False,
    )
    assert report.failures
    assert any(f.verifier_rules for f in report.failures), (
        "the static verifier saw nothing wrong with a program whose "
        "queue push was dropped"
    )


def test_failure_json_round_trip():
    report = run_oracle(
        generate_spec(3), metamorphic=False, inject="drop-push",
        use_verdict_cache=False,
    )
    for failure in report.failures:
        back = FuzzFailure.from_json(failure.to_json())
        assert back.seed == failure.seed
        assert back.spec == failure.spec
        assert back.check == failure.check
        assert back.options_name == failure.options_name
        assert back.verifier_rules == failure.verifier_rules
        assert back.minimized == failure.minimized


def test_summary_mentions_check_and_seed():
    failure = FuzzFailure(
        seed=7, spec=generate_spec(7), check="memory-divergence",
        message="3 words differ", options_name="full",
    )
    text = failure.summary()
    assert "memory-divergence" in text
    assert "seed=7" in text
    assert "full" in text
