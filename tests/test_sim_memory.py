"""Memory-system hierarchy: hit levels, latency ordering, drain."""

import pytest

from repro.sim.config import GPUConfig
from repro.sim.memory import MemorySystem


@pytest.fixture
def mem():
    return MemorySystem(GPUConfig())


def test_cold_access_goes_to_dram(mem):
    cfg = mem.config
    done = mem.access_sector(0.0, 42)
    assert done >= cfg.dram_latency
    assert mem.stats.dram_accesses == 1


def test_l1_hit_is_fast(mem):
    cfg = mem.config
    mem.access_sector(0.0, 42)
    hit = mem.access_sector(1000.0, 42)
    assert hit == pytest.approx(1000.0 + cfg.l1_latency)
    assert mem.stats.l1_hits == 1


def test_l2_hit_after_l1_eviction(mem):
    cfg = mem.config
    mem.access_sector(0.0, 7)
    # Thrash L1 set containing sector 7 (same set = stride of num_sets).
    stride = mem.l1.num_sets
    for k in range(1, cfg.l1_assoc + 1):
        mem.access_sector(0.0, 7 + k * stride)
    before = mem.stats.l2_hits
    mem.access_sector(10_000.0, 7)
    assert mem.stats.l2_hits == before + 1


def test_vector_access_completes_at_slowest_sector(mem):
    t_one = mem.access_global(0.0, (1,))
    mem2 = MemorySystem(GPUConfig())
    t_many = mem2.access_global(0.0, tuple(range(64)))
    assert t_many > t_one


def test_empty_sector_list_is_cheap(mem):
    assert mem.access_global(5.0, ()) == 5.0 + mem.config.l1_latency


def test_smem_access_charges_bandwidth(mem):
    cfg = mem.config
    t = mem.access_smem(0.0, cfg.smem_words_per_cycle * 4)
    assert t == pytest.approx(4.0 + cfg.smem_latency)
    assert mem.stats.smem_words == cfg.smem_words_per_cycle * 4


def test_drain_time_tracks_servers(mem):
    assert mem.drain_time() == 0.0
    mem.access_sector(0.0, 1)
    assert mem.drain_time() > 0.0


def test_bandwidth_scaling_changes_service():
    slow = MemorySystem(GPUConfig().scale_bandwidth(0.5))
    fast = MemorySystem(GPUConfig().scale_bandwidth(2.0))
    sectors = tuple(range(32))
    t_slow = slow.access_global(0.0, sectors)
    t_fast = fast.access_global(0.0, sectors)
    assert t_slow > t_fast
