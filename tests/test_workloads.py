"""Workload substrates: matrices, graphs, kernel templates, registry."""

import numpy as np
import pytest

from repro.fexec import run_kernel
from repro.workloads import all_benchmarks, get_benchmark
from repro.workloads import kernels as K
from repro.workloads.graphs import bfs_frontier, power_law_graph, road_graph
from repro.workloads.sparse import banded_csr, power_law_csr, road_like_csr


# -- sparse matrices --------------------------------------------------------


def _check_csr(matrix):
    assert matrix.row_ptr[0] == 0
    assert matrix.row_ptr[-1] == len(matrix.col_idx)
    assert np.all(np.diff(matrix.row_ptr) >= 1)  # >= 1 nnz per row
    assert matrix.col_idx.min() >= 0
    assert matrix.col_idx.max() < matrix.num_cols
    assert len(matrix.values) == matrix.nnz


def test_banded_csr_structure():
    m = banded_csr(128, nnz_per_row=5, bandwidth=8)
    _check_csr(m)
    for row in range(m.num_rows):
        cols = m.col_idx[m.row_ptr[row]:m.row_ptr[row + 1]]
        assert np.all(np.abs(cols - row) <= 8) or row < 8 or row > 120


def test_power_law_csr_is_skewed():
    m = power_law_csr(256, avg_nnz=8)
    _check_csr(m)
    lengths = np.diff(m.row_ptr)
    assert lengths.max() > 4 * np.median(lengths)


def test_road_like_csr_low_constant_degree():
    m = road_like_csr(144)
    _check_csr(m)
    lengths = np.diff(m.row_ptr)
    assert lengths.max() <= 6


def test_spmv_reference():
    m = banded_csr(32, nnz_per_row=3, bandwidth=4)
    x = np.ones(32)
    y = m.spmv(x)
    for row in range(32):
        s, e = m.row_ptr[row], m.row_ptr[row + 1]
        assert np.isclose(y[row], m.values[s:e].sum())


def test_generators_deterministic():
    a = power_law_csr(64, seed=5)
    b = power_law_csr(64, seed=5)
    assert np.array_equal(a.col_idx, b.col_idx)
    assert np.array_equal(a.values, b.values)


# -- graphs -----------------------------------------------------------------


def test_graph_generators():
    g = power_law_graph(128)
    _check_csr(g)
    r = road_graph(100)
    _check_csr(r)


def test_bfs_frontier_nonempty_and_valid():
    g = power_law_graph(256)
    frontier = bfs_frontier(g, source=0, depth=2)
    assert len(frontier) > 0
    assert frontier.min() >= 0 and frontier.max() < 256


# -- kernel templates: functional correctness vs numpy ---------------------


def test_streaming_kernel_matches_numpy():
    kernel = K.streaming_kernel(
        "t", elems_per_tb=256, num_tbs=2, num_inputs=2, fp_ops=1, seed=9
    )
    img = kernel.image_factory()
    run_kernel(kernel.program, img, kernel.launch)
    in0, in1 = img.read_array("in0"), img.read_array("in1")
    expected = (in0 + in1) * 1.0009765625 + 0.25
    assert np.allclose(img.read_array("out"), expected)


def test_gather_kernel_matches_numpy():
    kernel = K.gather_kernel(
        "t", elems_per_tb=256, num_tbs=2, table_words=512, fp_ops=0,
        seed=10,
    )
    img = kernel.image_factory()
    run_kernel(kernel.program, img, kernel.launch)
    idx = img.read_array("idx").astype(int)
    table = img.read_array("table")
    assert np.allclose(img.read_array("out"), table[idx])


def test_ell_graph_kernel_matches_numpy():
    kernel = K.ell_graph_kernel(
        "t", frontier_per_tb=128, num_tbs=2, degree=4,
        num_nodes=512, fp_ops=0, reduce_min=True, seed=11,
    )
    img = kernel.image_factory()
    run_kernel(kernel.program, img, kernel.launch)
    frontier = img.read_array("frontier").astype(int)
    adj = img.read_array("adj").astype(int).reshape(-1, 4)
    dist = img.read_array("dist")
    expected = dist[adj[frontier]].min(axis=1)
    assert np.allclose(img.read_array("out"), expected)


def test_csr_spmv_kernel_matches_reference():
    matrix = banded_csr(128, nnz_per_row=4, bandwidth=8, seed=12)
    kernel = K.csr_spmv_kernel("t", matrix, rows_per_tb=32, num_tbs=4,
                               seed=13)
    img = kernel.image_factory()
    run_kernel(kernel.program, img, kernel.launch)
    x = img.read_array("x")
    assert np.allclose(img.read_array("y"), matrix.spmv(x))


def test_csr_spmm_kernel_matches_reference():
    matrix = banded_csr(64, nnz_per_row=4, bandwidth=8, seed=14)
    kernel = K.csr_spmm_kernel("t", matrix, rows_per_tb=16, num_tbs=4,
                               seed=15)
    img = kernel.image_factory()
    run_kernel(kernel.program, img, kernel.launch)
    bdense = img.read_array("bdense").reshape(matrix.num_cols, K.WIDTH)
    cdense = img.read_array("cdense").reshape(matrix.num_rows, K.WIDTH)
    for row in range(matrix.num_rows):
        s, e = matrix.row_ptr[row], matrix.row_ptr[row + 1]
        expected = (
            matrix.values[s:e, None] * bdense[matrix.col_idx[s:e]]
        ).sum(axis=0)
        assert np.allclose(cdense[row], expected)


def test_tile_gemm_kernel_runs_and_is_flagged():
    kernel = K.tile_gemm_kernel("t", k_tiles=3, tile_elems=128,
                                num_tbs=1, hmma_per_tile=4, seed=16)
    assert kernel.is_gemm
    img = kernel.image_factory()
    run_kernel(kernel.program, img, kernel.launch)
    assert np.any(img.read_array("c") != 0)


def test_stencil_kernel_matches_numpy():
    offsets = (-2, 0, 2)
    kernel = K.stencil_kernel("t", elems_per_tb=128, num_tbs=2,
                              offsets=offsets, fp_ops=0, seed=17)
    img = kernel.image_factory()
    run_kernel(kernel.program, img, kernel.launch)
    halo = max(abs(o) for o in offsets) + 8
    grid = img.read_array("grid")
    n = 256
    expected = sum(
        grid[halo + off:halo + off + n] for off in offsets
    ) / len(offsets)
    assert np.allclose(img.read_array("out"), expected)


def test_spmv_kernel_rejects_oversized_launch():
    matrix = banded_csr(32)
    with pytest.raises(ValueError):
        K.csr_spmv_kernel("t", matrix, rows_per_tb=64, num_tbs=4)


# -- registry ---------------------------------------------------------------


def test_registry_has_all_benchmarks():
    names = all_benchmarks()
    assert len(names) == 23
    assert names[0] == "3d_unet"
    assert "lonestar_sp" in names
    # Deep-pipeline attention-class additions ride the same registry.
    assert {"flash_attention", "gemm_epilogue", "moe_routing"} <= set(names)


def test_benchmarks_cached_per_scale():
    a = get_benchmark("pointnet", 1.0)
    b = get_benchmark("pointnet", 1.0)
    c = get_benchmark("pointnet", 0.5)
    assert a is b
    assert a is not c


@pytest.mark.parametrize("name", all_benchmarks())
def test_every_benchmark_builds_and_runs_functionally(name):
    benchmark = get_benchmark(name, scale=0.25)
    assert benchmark.kernels
    kernel = benchmark.kernels[0]
    img = kernel.image_factory()
    result = run_kernel(kernel.program, img, kernel.launch)
    assert result.traces[0].total_instructions() > 0


def test_spgemm_symbolic_kernel_matches_reference():
    from repro.workloads.sparse_suite import spgemm_symbolic_kernel

    a = power_law_csr(64, avg_nnz=5, alpha=2.2, seed=31)
    b = power_law_csr(64, avg_nnz=5, alpha=2.2, seed=32)
    kernel = spgemm_symbolic_kernel("t", a, b, rows_per_tb=16, num_tbs=4,
                                    num_warps=2)
    img = kernel.image_factory()
    run_kernel(kernel.program, img, kernel.launch)
    counts = img.read_array("counts")
    for row in range(64):
        start, end = a.row_ptr[row], a.row_ptr[row + 1]
        expected = sum(
            int(b.row_ptr[c + 1] - b.row_ptr[c])
            for c in a.col_idx[start:end]
        )
        assert counts[row] == expected


def test_spgemm_numeric_kernel_deterministic():
    from repro.workloads.sparse_suite import spgemm_numeric_kernel

    a = power_law_csr(64, avg_nnz=4, alpha=2.2, seed=33)
    b = power_law_csr(64, avg_nnz=4, alpha=2.2, seed=34)
    kernel = spgemm_numeric_kernel("t", a, b, rows_per_tb=16, num_tbs=4,
                                   num_warps=2)
    img1 = kernel.image_factory()
    run_kernel(kernel.program, img1, kernel.launch)
    img2 = kernel.image_factory()
    run_kernel(kernel.program, img2, kernel.launch)
    assert np.array_equal(img1.read_array("c_out"), img2.read_array("c_out"))
    assert np.any(img1.read_array("c_out") != 0)
