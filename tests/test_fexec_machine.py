"""Functional machine semantics: ALU, memory, control, queues, barriers."""

import numpy as np
import pytest

from repro.errors import DeadlockError, ExecutionError
from repro.fexec import LaunchConfig, MemoryImage, run_kernel
from repro.isa import Opcode, ProgramBuilder, QueueRef, SpecialReg
from tests.conftest import run_and_read


def _run_single(builder_fn, *, num_warps=1, width=4, mem_words=1 << 10):
    img = MemoryImage(mem_words)
    out = img.alloc("out", 64)
    b = ProgramBuilder("t")
    builder_fn(b, out)
    b.exit()
    prog = b.finish()
    run_kernel(prog, img, LaunchConfig(num_warps=num_warps, warp_width=width))
    return img.read_array("out")


def test_integer_arithmetic():
    def body(b, out):
        r = b.imad(3, 4, 5)       # 17
        r = b.iadd(r, 1)          # 18
        r = b.idiv(r, 5)          # 3
        r = b.shl(r, 2)           # 12
        r = b.max_(r, 20)         # 20
        r = b.min_(r, 15)         # 15
        b.stg(b.mov(out), r)

    assert _run_single(body)[0] == 15


def test_float_arithmetic_and_frcp():
    def body(b, out):
        r = b.fmul(2.0, 4.0)       # 8
        r = b.ffma(r, 0.5, 1.0)    # 5
        r = b.frcp(r)              # 0.2
        b.stg(b.mov(out), r)

    assert np.isclose(_run_single(body)[0], 0.2)


def test_lane_id_and_sel():
    def body(b, out):
        lane = b.special(SpecialReg.LANE_ID)
        p = b.isetp("lt", lane, 2)
        v = b.sel(p, 100, 200)
        addr = b.iadd(lane, out)
        b.stg(addr, v)

    out = _run_single(body, width=4)
    assert list(out[:4]) == [100, 100, 200, 200]


def test_warp_sum_broadcast():
    def body(b, out):
        lane = b.special(SpecialReg.LANE_ID)
        total = b.warp_sum(lane)  # 0+1+2+3 = 6
        addr = b.iadd(lane, out)
        b.stg(addr, total)

    assert list(_run_single(body, width=4)[:4]) == [6, 6, 6, 6]


def test_guarded_store_masks_lanes():
    def body(b, out):
        lane = b.special(SpecialReg.LANE_ID)
        p = b.isetp("eq", lane, 1)
        addr = b.iadd(lane, out)
        b.emit(Opcode.STG, srcs=[addr, b.mov(7)], guard=p)

    out = _run_single(body, width=4)
    assert list(out[:4]) == [0, 7, 0, 0]


def test_divergent_branch_raises():
    def body(b, out):
        lane = b.special(SpecialReg.LANE_ID)
        p = b.isetp("lt", lane, 2)  # diverges within the warp
        b.bra("skip", guard=p)
        b.label("skip")
        b.stg(b.mov(out), 0)

    with pytest.raises(ExecutionError, match="divergent"):
        _run_single(body, width=4)


def test_smem_store_load_roundtrip():
    img = MemoryImage(1 << 10)
    out = img.alloc("out", 8)
    b = ProgramBuilder("t_smem")
    b.alloc_smem("buf", 16)
    lane = b.special(SpecialReg.LANE_ID)
    b.sts(lane, lane)
    v = b.lds(lane)
    addr = b.iadd(lane, out)
    b.stg(addr, v)
    b.exit()
    run_kernel(b.finish(), img, LaunchConfig(num_warps=1, warp_width=4))
    assert list(img.read_array("out")[:4]) == [0, 1, 2, 3]


def test_smem_out_of_bounds_raises():
    def body(b, out):
        b.sts(9999, 1.0)

    with pytest.raises(ExecutionError, match="SMEM"):
        _run_single(body)


def test_queue_push_pop_between_warps():
    """Warp of stage 0 pushes via LDG Q; stage-1 warp pops via MOV."""
    from repro.core.specs import ThreadBlockSpec

    img = MemoryImage(1 << 10)
    a = img.alloc("a", 8)
    img.write_array("a", np.arange(8))
    out = img.alloc("out", 8)
    b = ProgramBuilder("t_q")
    stage = b.special(SpecialReg.PIPE_STAGE_ID)
    lane = b.special(SpecialReg.LANE_ID)
    p1 = b.isetp("eq", stage, 1)
    b.bra("consumer", guard=p1)
    b.label("producer")
    addr = b.iadd(lane, a)
    b.ldg(addr, dst=QueueRef(0))
    b.exit()
    b.label("consumer")
    v = b.mov(QueueRef(0))
    oaddr = b.iadd(lane, out)
    b.stg(oaddr, v)
    b.exit()
    prog = b.finish()
    prog.tb_spec = ThreadBlockSpec(
        num_stages=2, warps_per_stage=[[0], [1]], stage_registers=[4, 4]
    )
    run_kernel(prog, img, LaunchConfig(num_warps=2, warp_width=4))
    assert list(img.read_array("out")[:4]) == [0, 1, 2, 3]


def test_pop_from_never_pushed_queue_deadlocks():
    img = MemoryImage(1 << 10)
    img.alloc("out", 8)
    b = ProgramBuilder("t_dead")
    b.mov(QueueRef(5))
    b.exit()
    with pytest.raises(DeadlockError):
        run_kernel(b.finish(), img, LaunchConfig(num_warps=1, warp_width=4))


def test_bar_sync_joins_all_warps():
    """Values written before the barrier are visible after it."""
    img = MemoryImage(1 << 10)
    out = img.alloc("out", 64)
    b = ProgramBuilder("t_sync")
    b.alloc_smem("buf", 64)
    lane = b.special(SpecialReg.LANE_ID)
    wid = b.special(SpecialReg.WARP_ID)
    tid = b.imad(wid, 4, lane)
    b.sts(tid, tid)
    b.bar_sync("tb")
    # Read the value written by the *other* warp (tid ^ 4).
    other = b.and_(b.iadd(tid, 4), 7)
    v = b.lds(other)
    oaddr = b.iadd(tid, out)
    b.stg(oaddr, v)
    b.exit()
    run_kernel(b.finish(), img, LaunchConfig(num_warps=2, warp_width=4))
    got = img.read_array("out")[:8]
    assert list(got) == [4, 5, 6, 7, 0, 1, 2, 3]


def test_stream_kernel_end_to_end(stream_setup):
    program, image_factory, launch, expected = stream_setup
    out = run_and_read(program, image_factory, launch, "o")
    assert np.allclose(out, expected)


def test_gather_kernel_end_to_end(gather_setup):
    program, image_factory, launch, expected = gather_setup
    out = run_and_read(program, image_factory, launch, "out")
    assert np.allclose(out, expected)


def test_tile_kernel_end_to_end(tile_setup):
    program, image_factory, launch, expected = tile_setup
    out = run_and_read(program, image_factory, launch, "out")
    assert np.allclose(out, expected)


def test_trace_records_categories_and_sectors(stream_setup):
    program, image_factory, launch, _ = stream_setup
    img = image_factory()
    result = run_kernel(program, img, launch)
    trace = result.traces[0]
    assert trace.total_instructions() > 0
    loads = [
        d for w in trace.warps for d in w.instrs
        if d.opcode is Opcode.LDG
    ]
    assert loads and all(len(d.sectors) > 0 for d in loads)
    stores = [
        d for w in trace.warps for d in w.instrs
        if d.opcode is Opcode.STG
    ]
    assert stores and all(d.is_store for d in stores)


def test_multiple_thread_blocks_have_distinct_tb_id():
    img = MemoryImage(1 << 10)
    out = img.alloc("out", 8)
    b = ProgramBuilder("t_tb")
    tb = b.special(SpecialReg.TB_ID)
    lane = b.special(SpecialReg.LANE_ID)
    pos = b.imad(tb, 4, lane)
    addr = b.iadd(pos, out)
    b.stg(addr, tb)
    b.exit()
    run_kernel(
        b.finish(), img,
        LaunchConfig(num_warps=1, warp_width=4, num_thread_blocks=2),
    )
    assert list(img.read_array("out")) == [0, 0, 0, 0, 1, 1, 1, 1]
