"""Calibration: the model is held to its stated tolerances.

The ISSUE acceptance criteria live here: over the full workload
registry the predicted bottleneck stage must agree with the simulator's
dominant stall attribution on at least ``AGREEMENT_FLOOR`` of kernels,
and predicted cycles must land within ``CYCLE_TOLERANCE`` of simulated
cycles on every kernel.  The fuzz corpus seeds replay through the same
harness so every past failure also exercises the model.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.perfmodel import (
    AGREEMENT_FLOOR,
    CYCLE_TOLERANCE,
    calibrate_fuzz_seed,
    calibrate_kernel,
    calibrate_registry,
)
from repro.experiments.configs import baseline_config, wasp_gpu_config
from repro.experiments.runner import TraceCache
from repro.fuzz.corpus import load_corpus
from repro.workloads import all_benchmarks, get_benchmark

SCALE = 0.25


@pytest.fixture(scope="module")
def cache():
    return TraceCache()


@pytest.fixture(scope="module")
def registry_report(cache):
    return calibrate_registry(wasp_gpu_config(), scale=SCALE, cache=cache)


def test_registry_covers_every_kernel(registry_report):
    expected = sum(
        len(get_benchmark(name, scale=SCALE).kernels)
        for name in all_benchmarks()
    )
    assert len(registry_report.rows) == expected
    assert len(registry_report.rows) >= 20


def test_registry_cycles_within_tolerance(registry_report):
    over = [
        (r.name, r.error)
        for r in registry_report.rows
        if r.error > CYCLE_TOLERANCE
    ]
    assert not over, f"kernels beyond ±{CYCLE_TOLERANCE:.0%}: {over}"
    assert registry_report.within() == len(registry_report.rows)


def test_registry_bottleneck_agreement(registry_report):
    assert registry_report.agreement >= AGREEMENT_FLOOR, [
        (r.name, r.predicted_stage, r.simulated_stage)
        for r in registry_report.rows
        if not r.bottleneck_agrees
    ]


def test_registry_report_json(registry_report):
    doc = json.loads(json.dumps(registry_report.to_json()))
    assert doc["total"] == len(registry_report.rows)
    assert doc["within_tolerance"] == registry_report.within()
    assert doc["agreement"] == round(registry_report.agreement, 4)
    row = doc["rows"][0]
    for key in (
        "name", "config", "predicted_cycles", "simulated_cycles",
        "error", "predicted_stage", "simulated_stage",
        "bottleneck_agrees", "stall_mix_distance",
    ):
        assert key in row


#: Deep-pipeline workloads carry their own explicit error budget
#: (tighter than the registry-wide CYCLE_TOLERANCE): the attention-class
#: kernels are the ISSUE's acceptance surface, so a silent drift toward
#: the generic tolerance should fail loudly here first.
DEEP_PIPELINE_ERROR_BUDGET = 0.15

DEEP_PIPELINE_BENCHMARKS = (
    "flash_attention", "gemm_epilogue", "moe_routing",
)


@pytest.mark.parametrize("name", DEEP_PIPELINE_BENCHMARKS)
def test_deep_pipeline_workloads_calibrate(name, registry_report):
    """Each attention-class kernel lands within the explicit ≤15%
    budget and its predicted bottleneck stage matches the simulator."""
    bench = get_benchmark(name, scale=SCALE)
    kernel_names = {k.name for k in bench.kernels}
    rows = [r for r in registry_report.rows if r.name in kernel_names]
    assert len(rows) == len(kernel_names)
    for row in rows:
        assert row.error <= DEEP_PIPELINE_ERROR_BUDGET, (
            f"{name}/{row.name}: predicted {row.predicted_cycles:.0f}"
            f" vs simulated {row.simulated_cycles:.0f}"
            f" ({row.error:.1%} > {DEEP_PIPELINE_ERROR_BUDGET:.0%})"
        )
        assert row.bottleneck_agrees, (
            f"{name}/{row.name}: predicted stage {row.predicted_stage}"
            f" vs simulated stage {row.simulated_stage}"
        )


def test_calibrate_kernel_baseline_config(cache):
    kernel = get_benchmark("hpcg", scale=SCALE).kernel("waxpby")
    row, prediction = calibrate_kernel(kernel, baseline_config(), cache)
    assert row.config_name == "BASELINE"
    assert row.error <= CYCLE_TOLERANCE
    assert prediction.cycles == row.predicted_cycles


# -- fuzz corpus seeds (property: past failures calibrate too) ------------


def _corpus_entries():
    entries = load_corpus()
    assert entries, "tests/corpus/ must not be empty"
    return entries


@pytest.mark.parametrize(
    "entry", _corpus_entries(), ids=lambda e: e.name
)
def test_corpus_seed_calibrates(entry, cache):
    """Every corpus spec (uncorrupted) stays within model tolerance."""
    row = calibrate_fuzz_seed(
        entry.spec.to_json(), wasp_gpu_config(), cache
    )
    assert row.name == f"seed={entry.spec.seed}"
    assert row.error <= CYCLE_TOLERANCE, (
        f"{entry.name}: predicted {row.predicted_cycles:.0f} vs "
        f"simulated {row.simulated_cycles:.0f} ({row.error:.1%})"
    )
    assert row.bottleneck_agrees, (
        f"{entry.name}: predicted stage {row.predicted_stage} vs "
        f"simulated stage {row.simulated_stage}"
    )
