"""Content-addressed trace cache: keys, sharing, disk round-trips.

Covers the two-tier :class:`TraceCache`: structurally identical kernels
must share one entry regardless of object identity, any structural
mutation must produce a distinct key, and the persistent
:class:`TraceStore` tier must round-trip traces bit-identically while
degrading gracefully (corrupt files, version mismatches) to plain
regeneration.
"""

import gzip
import json

import numpy as np
import pytest

from repro.experiments.configs import baseline_config, wasp_gpu_config
from repro.experiments.runner import TraceCache, run_kernel
from repro.fexec import LaunchConfig, MemoryImage
from repro.fexec.trace_store import TraceStore, cache_enabled
from repro.isa import ProgramBuilder, SpecialReg
from repro.sim.config import baseline_a100
from repro.sim.gpu import simulate_kernel
from repro.workloads import get_benchmark
from repro.workloads.base import Kernel

_DATA_WORDS = 64


def _build_image(value: float) -> MemoryImage:
    img = MemoryImage(1 << 12)
    img.alloc("data", _DATA_WORDS)
    img.write_array("data", np.full(_DATA_WORDS, value))
    return img


def _tiny_kernel(
    name: str = "tiny",
    *,
    value: float = 7.0,
    extra_op: bool = False,
    num_warps: int = 2,
) -> Kernel:
    base = _build_image(value).base("data")
    b = ProgramBuilder(name)
    lane = b.special(SpecialReg.LANE_ID)
    addr = b.iadd(lane, base)
    v = b.ldg(addr)
    v = b.fadd(v, 1.0)
    if extra_op:
        v = b.fmul(v, 2.0)
    b.stg(addr, v)
    b.exit()
    return Kernel(
        name=name,
        program=b.finish(),
        image_factory=lambda: _build_image(value),
        launch=LaunchConfig(num_warps=num_warps, warp_width=4),
    )


# -- content addressing ------------------------------------------------------


def test_identical_kernels_share_cache_entry():
    cache = TraceCache()
    k1 = _tiny_kernel("alpha")
    k2 = _tiny_kernel("beta")  # same structure, different name/objects
    assert cache.key_for(k1, None) == cache.key_for(k2, None)
    cache.original(k1)
    cache.original(k2)
    assert cache.stats.generations == 1
    assert cache.stats.memory_hits == 1


def test_mutated_program_gets_distinct_key():
    cache = TraceCache()
    base = _tiny_kernel()
    mutant = _tiny_kernel(extra_op=True)
    assert cache.key_for(base, None) != cache.key_for(mutant, None)


def test_mutated_inputs_or_launch_get_distinct_keys():
    cache = TraceCache()
    base = _tiny_kernel()
    other_data = _tiny_kernel(value=9.0)
    other_launch = _tiny_kernel(num_warps=4)
    keys = {
        cache.key_for(k, None)
        for k in (base, other_data, other_launch)
    }
    assert len(keys) == 3


def test_options_distinguish_cache_entries():
    cache = TraceCache()
    kernel = _tiny_kernel()
    options = wasp_gpu_config().compiler
    assert cache.key_for(kernel, None) != cache.key_for(kernel, options)


# -- disk round-trip ---------------------------------------------------------


@pytest.fixture
def store(tmp_path):
    return TraceStore(tmp_path / "cache")


def test_disk_round_trip_bit_identical_simulation(store):
    kernel = _tiny_kernel()
    gpu = baseline_a100()

    warm = TraceCache(store=store)
    reference = simulate_kernel(warm.original(kernel).traces, gpu)
    assert warm.stats.generations == 1
    assert warm.stats.disk_writes == 1

    fresh = TraceCache(store=store)  # fresh memory tier, same disk
    replayed = simulate_kernel(fresh.original(kernel).traces, gpu)
    assert fresh.stats.disk_hits == 1
    assert fresh.stats.generations == 0
    assert replayed.cycles == reference.cycles


def test_specialized_round_trip_through_run_kernel(store):
    kernel = get_benchmark("pointnet", 0.1).kernels[0]
    config = wasp_gpu_config()

    warm = TraceCache(store=store)
    reference = run_kernel(kernel, config, warm)
    assert warm.stats.generations > 0

    fresh = TraceCache(store=store)
    replayed = run_kernel(kernel, config, fresh)
    assert fresh.stats.generations == 0
    assert fresh.stats.disk_hits > 0
    assert replayed.cycles == reference.cycles
    assert replayed.used_specialized == reference.used_specialized


def test_baseline_run_kernel_round_trip(store):
    kernel = get_benchmark("lonestar_bfs", 0.1).kernels[0]
    config = baseline_config()
    reference = run_kernel(kernel, config, TraceCache(store=store))
    replayed = run_kernel(kernel, config, TraceCache(store=store))
    assert replayed.cycles == reference.cycles


# -- graceful degradation ----------------------------------------------------


def _single_entry_path(store):
    paths = list(store.cache_dir.glob("*.json.gz"))
    assert len(paths) == 1
    return paths[0]


def test_corrupted_entry_falls_back_to_regeneration(store):
    kernel = _tiny_kernel()
    warm = TraceCache(store=store)
    reference = warm.original(kernel).traces

    _single_entry_path(store).write_bytes(b"not gzip at all")

    fresh = TraceCache(store=store)
    traces = fresh.original(kernel).traces
    assert fresh.stats.disk_hits == 0
    assert fresh.stats.generations == 1
    gpu = baseline_a100()
    assert (
        simulate_kernel(traces, gpu).cycles
        == simulate_kernel(reference, gpu).cycles
    )


def test_version_mismatch_falls_back_to_regeneration(store):
    kernel = _tiny_kernel()
    TraceCache(store=store).original(kernel)

    path = _single_entry_path(store)
    with gzip.open(path, "rt", encoding="utf-8") as fh:
        envelope = json.load(fh)
    envelope["format"] = envelope["format"] + 1
    with gzip.open(path, "wt", encoding="utf-8") as fh:
        json.dump(envelope, fh)

    fresh = TraceCache(store=store)
    fresh.original(kernel)
    assert fresh.stats.disk_hits == 0
    assert fresh.stats.generations == 1


def test_key_mismatch_is_a_miss(store):
    kernel = _tiny_kernel()
    TraceCache(store=store).original(kernel)
    path = _single_entry_path(store)
    assert store.load("0" * 64) is None
    # The real key still loads fine.
    key = path.name.removesuffix(".json.gz")
    assert store.load(key) is not None


def test_store_clear_and_count(store):
    TraceCache(store=store).original(_tiny_kernel())
    assert store.entry_count() == 1
    assert store.clear() == 1
    assert store.entry_count() == 0


def test_cache_disabled_by_environment(monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", "off")
    assert not cache_enabled()
    assert TraceStore.from_env() is None
    monkeypatch.setenv("REPRO_CACHE", "1")
    assert cache_enabled()
