"""Property tests for N-stage circular-buffer phase arithmetic.

Satellite requirement: the ring algebra the compiler, finalizer, and
happens-before engine all share — phase-letter keys, slot partners,
copy suffixes — must hold for every depth in [2, MAX_PIPELINE_DEPTH],
not just the double-buffered case the originals pinned.  Hypothesis
draws random depths and slot indices; a structural check compiles the
deep fuzz skeleton at random depths and asserts per-slot fill/read and
arrive/wait balance.
"""

from __future__ import annotations

import re
from collections import Counter
from dataclasses import replace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compiler import WaspCompiler, WaspCompilerOptions
from repro.core.compiler.buffering import (
    MAX_PIPELINE_DEPTH,
    copy_suffix,
    phase_suffix,
)
from repro.core.compiler.stagesplit import (
    partner_tile_key,
    phase_key,
    ring_depth,
    tile_ring,
)
from repro.fuzz.generator import build_kernel
from repro.fuzz.spec import generate_spec
from repro.isa.opcodes import Opcode

depths = st.integers(min_value=2, max_value=MAX_PIPELINE_DEPTH)

_COPY_SUFFIX = re.compile(r"__db\d*$")


@given(depth=depths, data=st.data())
def test_phase_key_round_trips(depth, data):
    phase = data.draw(st.integers(0, depth - 1))
    key = phase_key("tile0", phase)
    assert tile_ring(key) == ("tile0", phase)
    assert key.endswith(phase_suffix(phase))


@given(depth=depths)
def test_phase_suffixes_are_distinct(depth):
    suffixes = {phase_suffix(p) for p in range(depth)}
    copies = {copy_suffix(p) for p in range(depth)}
    assert len(suffixes) == depth
    assert len(copies) == depth


@given(depth=depths, data=st.data())
def test_copy_suffix_strips_back_to_base(depth, data):
    """Every ring copy name collapses onto its base buffer — the rule
    the sanitizer and racediff share for group canonicalization."""
    phase = data.draw(st.integers(0, depth - 1))
    name = "ring_x" + copy_suffix(phase)
    assert _COPY_SUFFIX.sub("", name) == "ring_x"


@given(depth=depths, data=st.data())
def test_partner_is_previous_slot(depth, data):
    phase = data.draw(st.integers(0, depth - 1))
    key = phase_key("tile2", phase)
    partner = partner_tile_key(key, depth)
    assert tile_ring(partner) == ("tile2", (phase - 1) % depth)


@given(depth=depths)
def test_partner_walk_cycles_through_every_slot(depth):
    """Following partners from slot 0 visits all N slots exactly once
    and returns to the start after N steps (slot/phase round-trip)."""
    key = phase_key("tile5", 0)
    seen = []
    for _ in range(depth):
        key = partner_tile_key(key, depth)
        seen.append(key)
    assert key == phase_key("tile5", 0)
    assert len(set(seen)) == depth


def test_partner_is_an_involution_at_depth_two():
    """Depth-2 parity: A and B are each other's partners, matching the
    original double-buffering semantics bit for bit."""
    a, b = phase_key("tile0", 0), phase_key("tile0", 1)
    assert partner_tile_key(a, 2) == b
    assert partner_tile_key(b, 2) == a


@given(depth=depths)
def test_ring_depth_counts_phase_siblings(depth):
    keys = {phase_key("tile1", p) for p in range(depth)}
    keys.add("unrelated")
    for p in range(depth):
        assert ring_depth(phase_key("tile1", p), keys) == depth
    assert ring_depth("unrelated", keys) == 1


@settings(max_examples=10, deadline=None)
@given(
    depth=depths,
    warps=st.integers(min_value=1, max_value=2),
    mult=st.integers(min_value=1, max_value=2),
)
def test_ring_slots_balance_fills_reads_and_barriers(depth, warps, mult):
    """Push/pop balance per slot: after compiling the deep skeleton at
    depth N, every ring slot has the same number of fill (LDGSTS) and
    read (LDS) sites, and each slot's filled/empty barriers pair one
    arrive side with one wait side."""
    spec = replace(
        generate_spec(5),
        num_warps=warps,
        warp_width=4,
        num_tbs=1,
        tile_elems=warps * 4 * mult,
        iters=depth + 1,
    )
    kernel = build_kernel(spec)
    result = WaspCompiler(
        WaspCompilerOptions(
            pipeline_depth=depth, enable_tma_offload=False
        )
    ).compile(kernel.program, num_warps=spec.num_warps)
    assert result.specialized
    fills: Counter = Counter()
    reads: Counter = Counter()
    arrives: Counter = Counter()
    waits: Counter = Counter()
    for instr in result.program.instructions():
        slot = (instr.attrs.get("smem_buffer"),
                instr.attrs.get("smem_phase"))
        if instr.opcode is Opcode.LDGSTS:
            fills[slot] += 1
        elif instr.opcode is Opcode.LDS:
            reads[slot] += 1
        elif instr.opcode is Opcode.BAR_ARRIVE:
            arrives[instr.barrier_id] += 1
        elif instr.opcode is Opcode.BAR_WAIT:
            waits[instr.barrier_id] += 1
    for buffer in ("ring_x", "ring_y"):
        per_slot_fills = [fills[(buffer, p)] for p in range(depth)]
        per_slot_reads = [reads[(buffer, p)] for p in range(depth)]
        assert min(per_slot_fills) > 0
        assert len(set(per_slot_fills)) == 1
        assert per_slot_reads == per_slot_fills
    ring_barriers = [b for b in arrives if tile_ring(
        b.rsplit("_", 1)[0]) is not None]
    assert ring_barriers
    for barrier in ring_barriers:
        assert arrives[barrier] == waits[barrier] == 1
