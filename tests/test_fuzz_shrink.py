"""The shrinker: greedy, deterministic, floor-seeking."""

from __future__ import annotations

from dataclasses import replace

from repro.fuzz.oracle import FuzzFailure
from repro.fuzz.shrink import shrink_spec
from repro.fuzz.spec import generate_spec


def _fake_failure(spec, check="boom"):
    return FuzzFailure(seed=spec.seed, spec=spec, check=check, message="")


def test_shrinks_to_the_predicate_floor():
    """With a synthetic reproducer that fails whenever num_warps >= 2
    and iters >= 3, the minimum is exactly (2, 3)."""
    spec = generate_spec(0)
    spec = replace(spec, num_warps=4, iters=5, num_tbs=3, fp_ops=4)

    def reproduce(candidate):
        if candidate.num_warps >= 2 and candidate.iters >= 3:
            return [_fake_failure(candidate)]
        return []

    small = shrink_spec(spec, "boom", reproduce=reproduce)
    assert (small.num_warps, small.iters) == (2, 3)
    assert small.num_tbs == 1 and small.fp_ops == 0


def test_shrinking_is_deterministic():
    spec = replace(generate_spec(5), num_warps=4, iters=5)

    def reproduce(candidate):
        return [_fake_failure(candidate)] if candidate.iters >= 2 else []

    assert (shrink_spec(spec, "boom", reproduce=reproduce)
            == shrink_spec(spec, "boom", reproduce=reproduce))


def test_returns_original_when_nothing_smaller_fails():
    spec = generate_spec(0)

    def reproduce(candidate):
        return []  # only the original fails; no candidate reproduces

    assert shrink_spec(spec, "boom", reproduce=reproduce) == spec


def test_only_matching_checks_count_as_reproduction():
    spec = replace(generate_spec(0), num_warps=4)

    def reproduce(candidate):
        return [_fake_failure(candidate, check="different-bug")]

    assert shrink_spec(spec, "boom", reproduce=reproduce) == spec


def test_broken_candidates_are_skipped():
    spec = replace(generate_spec(0), num_warps=4, iters=4)

    def reproduce(candidate):
        if candidate.num_warps == 1:
            raise RuntimeError("candidate does not even build")
        return [_fake_failure(candidate)]

    small = shrink_spec(spec, "boom", reproduce=reproduce)
    assert small.num_warps == 2  # stopped above the broken floor
    assert small.iters == 1


def test_attempt_budget_is_respected():
    spec = replace(generate_spec(0), num_warps=4, iters=5, num_tbs=3)
    calls = []

    def reproduce(candidate):
        calls.append(candidate)
        return [_fake_failure(candidate)]

    shrink_spec(spec, "boom", reproduce=reproduce, max_attempts=3)
    assert len(calls) <= 3


def test_real_injected_failure_minimizes():
    """End to end: a drop-push deadlock on a real generated kernel
    shrinks to the smallest kernel that still deadlocks."""
    spec = generate_spec(0)
    small = shrink_spec(spec, "deadlock", inject="drop-push")
    assert small.num_warps == 1
    assert small.num_tbs == 1
    assert small.iters == 1
    assert small.fp_ops == 0
