"""ProgramBuilder DSL behaviour."""

import pytest

from repro.errors import IsaError
from repro.isa import Opcode, ProgramBuilder, QueueRef


def test_fresh_registers_are_distinct():
    b = ProgramBuilder("p")
    assert b.reg() != b.reg()
    assert b.pred() != b.pred()


def test_binops_emit_and_return_destination():
    b = ProgramBuilder("p")
    r = b.iadd(1, 2)
    b.exit()
    prog = b.finish()
    instr = prog.entry.instructions[0]
    assert instr.opcode is Opcode.IADD
    assert instr.dst == r


def test_immediates_coerced_from_python_numbers():
    b = ProgramBuilder("p")
    b.fmul(1.5, 2.0)
    b.exit()
    prog = b.finish()
    ops = prog.entry.instructions[0].srcs
    assert all(type(op).__name__ == "Immediate" for op in ops)


def test_isetp_rejects_bad_comparison():
    b = ProgramBuilder("p")
    with pytest.raises(IsaError):
        b.isetp("spaceship", 1, 2)


def test_isetp_records_comparison_attr():
    b = ProgramBuilder("p")
    b.isetp("ge", 1, 2)
    b.exit()
    assert b.program.entry.instructions[0].attrs["cmp"] == "ge"


def test_ldg_accepts_queue_destination():
    b = ProgramBuilder("p")
    b.ldg(b.reg(), dst=QueueRef(0))
    b.exit()
    instr = b.program.entry.instructions[0]
    assert instr.dst == QueueRef(0)


def test_alloc_smem_tracks_buffers_and_size():
    b = ProgramBuilder("p")
    base_a = b.alloc_smem("a", 64)
    base_b = b.alloc_smem("b", 32)
    assert base_a == 0 and base_b == 64
    assert b.program.smem_words == 96
    assert b.program.smem_buffers == {"a": (0, 64), "b": (64, 32)}


def test_alloc_smem_rejects_duplicate():
    b = ProgramBuilder("p")
    b.alloc_smem("a", 8)
    with pytest.raises(IsaError):
        b.alloc_smem("a", 8)


def test_buffer_tags_attached_to_memory_ops():
    b = ProgramBuilder("p")
    b.alloc_smem("buf", 16)
    b.sts(b.reg(), 1.0, buffer="buf")
    b.lds(b.reg(), buffer="buf")
    b.ldgsts(b.reg(), b.reg(), buffer="buf")
    b.exit()
    tags = [i.attrs.get("smem_buffer") for i in b.program.entry.instructions[:3]]
    assert tags == ["buf", "buf", "buf"]


def test_finish_validates_by_default():
    b = ProgramBuilder("p")
    b.bra("nowhere")
    with pytest.raises(Exception):
        b.finish()


def test_emit_after_finish_rejected():
    b = ProgramBuilder("p")
    b.exit()
    b.finish()
    with pytest.raises(IsaError):
        b.mov(0)


def test_label_starts_new_block():
    b = ProgramBuilder("p")
    b.mov(0)
    b.label("second")
    b.exit()
    prog = b.finish()
    assert [blk.label for blk in prog.blocks] == ["entry", "second"]


def test_warp_sum_emits_redux():
    b = ProgramBuilder("p")
    r = b.mov(1.0)
    b.warp_sum(r)
    b.exit()
    assert b.program.entry.instructions[1].opcode is Opcode.REDUX
