"""Smaller units: program helpers, trace summaries, pipeline dropping,
sync-pair tagging edge cases, runner fallbacks."""

from repro.core.compiler.buffering import tag_tile_sync_pairs
from repro.core.compiler.pipeline import drop_empty_stages
from repro.core.compiler.stagesplit import StageProgram
from repro.fexec.trace import DynamicInstr, WarpTrace
from repro.isa import Instruction, Opcode, ProgramBuilder, QueueRef, Register
from repro.isa.opcodes import FuncUnit, InstrCategory
from repro.isa.program import used_predicates, used_registers


def test_used_registers_and_predicates_helpers():
    b = ProgramBuilder("h")
    r = b.iadd(1, 2)
    p = b.isetp("lt", r, 5)
    b.emit(Opcode.MOV, dst=b.reg(), srcs=[r], guard=p)
    b.exit()
    instrs = list(b.program.instructions())
    regs = used_registers(instrs)
    preds = used_predicates(instrs)
    assert r in regs
    assert p in preds


def test_warp_trace_category_counts_and_sectors():
    trace = WarpTrace(warp_id=0, pipe_stage_id=1)
    trace.instrs.append(
        DynamicInstr(
            opcode=Opcode.LDG, unit=FuncUnit.LSU_GLOBAL,
            category=InstrCategory.MEMORY, sectors=(1, 2, 3),
        )
    )
    trace.instrs.append(
        DynamicInstr(
            opcode=Opcode.TMA_STREAM, unit=FuncUnit.TMA,
            category=InstrCategory.TMA,
            tma_job={"total_sectors": 10},
        )
    )
    counts = trace.count_by_category()
    assert counts[InstrCategory.MEMORY] == 1
    assert counts[InstrCategory.TMA] == 1
    assert trace.total_sectors() == 13


def _stage(instrs, stage, is_compute=False):
    b = ProgramBuilder(f"s{stage}")
    for instr in instrs:
        b._emit(instr)
    b.exit()
    return StageProgram(stage=stage, program=b.finish(),
                        is_compute=is_compute)


def test_drop_empty_stages_renumbers():
    workless = _stage(
        [Instruction(Opcode.IADD, dst=Register(0),
                     srcs=[Register(0), Register(1)])],
        stage=0,
    )
    worker = _stage(
        [Instruction(Opcode.LDG, dst=QueueRef(0), srcs=[Register(0)])],
        stage=1,
    )
    compute = _stage(
        [Instruction(Opcode.MOV, dst=Register(0), srcs=[QueueRef(0)])],
        stage=2, is_compute=True,
    )
    kept, dropped = drop_empty_stages([workless, worker, compute])
    assert dropped == 1
    assert [sp.stage for sp in kept] == [0, 1]
    assert kept[-1].is_compute


def test_drop_keeps_barrier_stages():
    barrier_stage = _stage(
        [Instruction(Opcode.BAR_ARRIVE, barrier_id="x")], stage=0
    )
    compute = _stage(
        [Instruction(Opcode.STG, srcs=[Register(0), Register(1)])],
        stage=1, is_compute=True,
    )
    kept, dropped = drop_empty_stages([barrier_stage, compute])
    assert dropped == 0
    assert len(kept) == 2


def test_sync_pair_tagging_blocked_by_existing_arrive_wait():
    """An arrive/wait barrier between LDGSTS and BAR.SYNC blocks the
    pair search (the region is already hand-synchronized)."""
    b = ProgramBuilder("t")
    b.alloc_smem("buf", 8)
    b.bar_sync("tb")
    b.ldgsts(b.mov(64), b.mov(0), buffer="buf")
    b.bar_arrive("custom")
    b.bar_sync("tb")
    b.exit()
    prog = b.finish()
    keys = tag_tile_sync_pairs(prog)
    assert keys == []  # the post-side search hit BAR.ARRIVE first


def test_sync_pair_shared_by_two_ldgsts():
    b = ProgramBuilder("t")
    b.alloc_smem("buf", 16)
    b.bar_sync("tb")
    b.ldgsts(b.mov(64), b.mov(0), buffer="buf")
    b.ldgsts(b.mov(72), b.mov(8), buffer="buf")
    b.bar_sync("tb")
    b.exit()
    prog = b.finish()
    keys = tag_tile_sync_pairs(prog)
    assert keys == ["tile0"]
    tagged = [
        i.attrs.get("tile_key")
        for i in prog.instructions()
        if i.opcode is Opcode.LDGSTS
    ]
    assert tagged == ["tile0", "tile0"]


def test_runner_falls_back_when_kernel_does_not_fit():
    """A specialized kernel exceeding SM resources falls back to the
    original (ResourceError swallowed by the runner)."""
    from dataclasses import replace as dc_replace

    from repro.experiments.configs import wasp_gpu_config
    from repro.experiments.runner import TraceCache, run_kernel
    from repro.workloads.kernels import streaming_kernel

    kernel = streaming_kernel("tiny", elems_per_tb=128, num_tbs=1,
                              num_warps=4, seed=3)
    config = wasp_gpu_config()
    # Shrink the register file so the specialized block cannot fit.
    starved_gpu = dc_replace(config.gpu, registers_per_sm=2048)
    starved = dc_replace(config, gpu=starved_gpu)
    result = run_kernel(kernel, starved, TraceCache())
    assert not result.used_specialized
