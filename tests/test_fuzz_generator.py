"""The random kernel generator: seeded, replayable, valid, diverse.

Everything downstream (oracle, shrinker, corpus) relies on one
property: a :class:`FuzzSpec` fully determines the generated kernel —
program, memory image and launch — across processes and runs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fuzz.generator import build_kernel
from repro.fuzz.spec import (
    SKELETONS,
    FuzzSpec,
    generate_spec,
    shrink_candidates,
)

SEED_RANGE = range(40)


def test_specs_are_deterministic():
    for seed in SEED_RANGE:
        assert generate_spec(seed) == generate_spec(seed)


def test_specs_json_round_trip():
    for seed in SEED_RANGE:
        spec = generate_spec(seed)
        assert FuzzSpec.from_json(spec.to_json()) == spec


def test_unknown_skeleton_rejected():
    doc = generate_spec(0).to_json()
    doc["skeleton"] = "nope"
    with pytest.raises(ValueError, match="unknown skeleton"):
        FuzzSpec.from_json(doc)


def test_all_skeletons_generated():
    seen = {generate_spec(seed).skeleton for seed in SEED_RANGE}
    assert seen == set(SKELETONS)


def test_describe_names_the_skeleton():
    for seed in range(10):
        spec = generate_spec(seed)
        assert spec.skeleton in spec.describe()
        assert f"seed={seed}" in spec.describe()


@pytest.mark.parametrize("seed", list(range(20)))
def test_build_is_deterministic(seed):
    spec = generate_spec(seed)
    first, second = build_kernel(spec), build_kernel(spec)
    assert (first.program.canonical_encoding()
            == second.program.canonical_encoding())
    assert first.content_digest() == second.content_digest()
    assert np.array_equal(
        first.image_factory().snapshot(), second.image_factory().snapshot()
    )
    assert first.launch == second.launch


@pytest.mark.parametrize("seed", list(range(20)))
def test_generated_programs_are_valid(seed):
    kernel = build_kernel(generate_spec(seed))
    kernel.program.validate()


def test_skeleton_dispatch_rejects_unknown():
    from dataclasses import replace

    bogus = replace(generate_spec(0), skeleton="nope")
    with pytest.raises(KeyError):
        build_kernel(bogus)


def test_shrink_candidates_strictly_smaller():
    for seed in SEED_RANGE:
        spec = generate_spec(seed)
        for candidate in shrink_candidates(spec):
            assert candidate != spec
            # At least one shrinkable field moved toward its minimum and
            # none moved away (tile_elems may follow the thread count).
            diffs = [
                (field, getattr(spec, field), getattr(candidate, field))
                for field in (
                    "num_tbs", "iters", "num_warps", "fp_ops",
                    "num_inputs", "gather_depth", "inner_trip",
                    "table_words", "warp_width",
                )
                if getattr(spec, field) != getattr(candidate, field)
            ]
            assert diffs, "candidate changed nothing shrinkable"
            assert all(new < old for _f, old, new in diffs)


def test_shrink_keeps_tiled_specs_buildable():
    tiled = [
        generate_spec(seed) for seed in SEED_RANGE
        if generate_spec(seed).skeleton == "tiled"
    ]
    assert tiled
    for spec in tiled:
        for candidate in shrink_candidates(spec):
            build_kernel(candidate).program.validate()
