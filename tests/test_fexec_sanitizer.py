"""Vector-clock SMEM sanitizer and the static/dynamic race differential.

The sanitizer is the trust anchor for the happens-before engine: every
race it observes at runtime must already be statically flagged
(``repro racediff``), so these tests pin both its detection semantics
(barrier/queue ordering, access kinds, stage scoping) and the
differential's no-false-negative direction over the fuzz corpus.
"""

from __future__ import annotations

from dataclasses import replace

from tests.test_analysis_dataflow import build_ring_program

from repro.analysis.dataflow.hb import HBAnalysis
from repro.analysis.racediff import (
    diff_races,
    racediff_spec,
)
from repro.core.specs import ThreadBlockSpec
from repro.fexec import LaunchConfig, MemoryImage, run_kernel
from repro.fuzz.corpus import load_corpus
from repro.fuzz.mutate import apply_mutation
from repro.isa import ProgramBuilder, SpecialReg
from repro.sim import simulate_program
from repro.sim.config import baseline_a100


def _two_stage_program(synchronized: bool):
    """Stage 0 stores to ``box``, stage 1 loads it back; with
    ``synchronized`` a filled-style split barrier orders the pair."""
    b = ProgramBuilder("san", smem_words=0)
    base = b.alloc_smem("box", 32)
    stage_sel = b.special(SpecialReg.PIPE_STAGE_ID)
    lane = b.special(SpecialReg.LANE_ID)

    b.label("jump_table_1")
    p1 = b.isetp("ge", stage_sel, 1)
    b.bra("s1_entry", guard=p1)

    b.label("s0_entry")
    saddr = b.iadd(lane, base)
    b.sts(saddr, 7, buffer="box")
    if synchronized:
        b.bar_arrive("box_filled")
    b.exit()

    b.label("s1_entry")
    if synchronized:
        b.bar_wait("box_filled")
    saddr = b.iadd(lane, base)
    val = b.lds(saddr, buffer="box")
    out = b.iadd(lane, 512)
    b.stg(out, val)
    b.exit()

    program = b.finish()
    program.tb_spec = ThreadBlockSpec(
        num_stages=2,
        warps_per_stage=[[0], [1]],
        stage_registers=[8, 8],
        smem_words=32,
        barrier_expected={"box_filled": 1} if synchronized else {},
    )
    return program


def _run(program, sanitize=True, num_warps=2):
    return run_kernel(
        program,
        MemoryImage(1 << 10),
        LaunchConfig(num_warps=num_warps),
        collect_trace=False,
        sanitize=sanitize,
    )


# -- detection semantics -------------------------------------------------


def test_barrier_ordered_pair_is_race_free():
    assert _run(_two_stage_program(synchronized=True)).races == []


def test_unsynchronized_cross_stage_pair_races():
    races = _run(_two_stage_program(synchronized=False)).races
    assert len(races) == 1
    race = races[0]
    assert race.group == "box"
    assert race.stage_pair == frozenset({0, 1})
    assert race.kind in {"write-read", "read-write", "write-write"}
    assert "box" in race.format()


def test_race_serializes_with_stable_fields():
    races = _run(_two_stage_program(synchronized=False)).races
    payload = races[0].to_json()
    assert payload["group"] == "box"
    assert {payload["first_stage"], payload["second_stage"]} == {0, 1}


def test_same_stage_conflicts_are_out_of_scope():
    # Two warps of the same stage store to the same words: intra-stage
    # ordering is the baseline memory model's business, not the
    # cross-stage pipeline protocol the sanitizer checks.
    b = ProgramBuilder("intra", smem_words=0)
    base = b.alloc_smem("box", 32)
    lane = b.special(SpecialReg.LANE_ID)
    b.label("s0_entry")
    saddr = b.iadd(lane, base)
    b.sts(saddr, 3, buffer="box")
    b.exit()
    program = b.finish()
    program.tb_spec = ThreadBlockSpec(
        num_stages=1,
        warps_per_stage=[[0, 1]],
        stage_registers=[8],
        smem_words=32,
    )
    assert _run(program).races == []


def test_sanitizer_is_off_by_default():
    result = _run(_two_stage_program(synchronized=False), sanitize=False)
    assert result.races == []


def test_gpu_config_sanitize_reaches_sim_result():
    program = _two_stage_program(synchronized=False)
    config = replace(baseline_a100(), sanitize=True)
    result = simulate_program(
        program, MemoryImage(1 << 10), LaunchConfig(num_warps=2), config
    )
    assert result.sanitizer_races
    quiet = simulate_program(
        program,
        MemoryImage(1 << 10),
        LaunchConfig(num_warps=2),
        baseline_a100(),
    )
    assert quiet.sanitizer_races == []


# -- the static/dynamic differential -------------------------------------


def test_racediff_clean_on_the_ring():
    program = build_ring_program()
    diff = diff_races(
        "ring8",
        program,
        MemoryImage(1 << 10),
        LaunchConfig(num_warps=2),
    )
    assert diff.ok
    assert diff.num_dynamic == 0
    assert diff.to_json()["ok"] is True


def test_racediff_covers_observed_races():
    # phase-off-by-one produces real dynamic races; the static S004
    # verdict must cover every one of them.
    mutant = apply_mutation(build_ring_program(), "phase-off-by-one")
    assert mutant is not None
    diff = diff_races(
        "ring8:phase-off-by-one",
        mutant,
        MemoryImage(1 << 10),
        LaunchConfig(num_warps=2),
    )
    assert diff.num_dynamic >= 1
    assert diff.ok, diff.missing


def test_racediff_flags_a_static_false_negative():
    # Forcing an empty static verdict makes every observed race a
    # reported false negative — the failure mode the gate exists for.
    program = _two_stage_program(synchronized=False)
    diff = diff_races(
        "san:blindfolded",
        program,
        MemoryImage(1 << 10),
        LaunchConfig(num_warps=2),
        analysis=HBAnalysis(),
    )
    assert not diff.ok
    assert diff.missing


def test_racediff_skips_programs_that_fault():
    mutant = apply_mutation(build_ring_program(), "drop-arrive")
    assert mutant is not None
    diff = diff_races(
        "ring8:drop-arrive",
        mutant,
        MemoryImage(1 << 10),
        LaunchConfig(num_warps=2),
    )
    assert diff.skipped is not None and "Deadlock" in diff.skipped
    assert diff.ok  # nothing observed, nothing missing


def test_racediff_corpus_has_no_static_false_negatives():
    entries = [e for e in load_corpus() if e.inject is None]
    assert entries
    diffs = [d for e in entries for d in racediff_spec(e.spec)]
    assert diffs
    bad = [d for d in diffs if not d.ok]
    assert not bad, [(d.label, d.missing) for d in bad]
