"""Property tests on whole pipelines: tile buffering and sparse kernels.

These close the loop on the trickiest transformations: the double-buffer
barrier generation protocol (random tile counts, including odd trip
counts) and CSR kernels with data-dependent inner loops, checked for
functional equivalence AND timing-level liveness (the simulation must
terminate, not deadlock, for every compiled pipeline).
"""

from dataclasses import replace

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compiler import WaspCompiler, WaspCompilerOptions
from repro.fexec import LaunchConfig, MemoryImage, run_kernel
from repro.sim import simulate_kernel
from repro.sim.config import baseline_a100, wasp_gpu
from repro.workloads.kernels import csr_spmv_kernel
from repro.workloads.sparse import banded_csr, power_law_csr
from tests.conftest import WIDTH, build_tile_program


@settings(max_examples=12, deadline=None)
@given(
    tiles=st.integers(1, 7),
    num_warps=st.integers(1, 3),
    double_buffering=st.booleans(),
)
def test_tile_pipeline_equivalent_and_live(tiles, num_warps,
                                           double_buffering):
    tile_words = num_warps * WIDTH
    n = tiles * tile_words
    values = np.arange(n, dtype=float) * 0.25

    def image_factory():
        img = MemoryImage(1 << 13)
        img.alloc("a", n)
        img.write_array("a", values)
        img.alloc("out", tile_words)
        return img

    layout = image_factory()
    program = build_tile_program(
        tiles, tile_words, layout.base("a"), layout.base("out"), num_warps
    )
    launch = LaunchConfig(num_warps=num_warps, warp_width=WIDTH)
    expected = values.reshape(tiles, tile_words).sum(axis=0)

    compiled = WaspCompiler(
        WaspCompilerOptions(double_buffering=double_buffering)
    ).compile(program, num_warps=num_warps)
    assert compiled.specialized
    spec_launch = replace(
        launch, num_warps=num_warps * compiled.num_stages
    )
    img = image_factory()
    result = run_kernel(compiled.program, img, spec_launch)
    assert np.allclose(img.read_array("out"), expected)
    # Liveness at timing level: barrier generation counting must let
    # the simulation drain (DeadlockError would propagate here).
    sim = simulate_kernel(result.traces, wasp_gpu())
    assert sim.cycles > 0


@settings(max_examples=10, deadline=None)
@given(
    rows=st.sampled_from([64, 96, 128]),
    nnz=st.integers(2, 8),
    power_law=st.booleans(),
    seed=st.integers(0, 1000),
)
def test_csr_spmv_pipeline_equivalent_and_live(rows, nnz, power_law, seed):
    if power_law:
        matrix = power_law_csr(rows, avg_nnz=nnz, seed=seed)
    else:
        matrix = banded_csr(rows, nnz_per_row=nnz, bandwidth=8, seed=seed)
    kernel = csr_spmv_kernel(
        "prop_spmv", matrix, rows_per_tb=rows // 2, num_tbs=2,
        num_warps=2, seed=seed,
    )
    reference = kernel.image_factory()
    run_kernel(kernel.program, reference, kernel.launch)
    want = reference.read_array("y")
    assert np.allclose(want, matrix.spmv(reference.read_array("x")))

    compiled = WaspCompiler().compile(
        kernel.program, num_warps=kernel.launch.num_warps
    )
    if not compiled.specialized:
        return
    img = kernel.image_factory()
    launch = replace(
        kernel.launch,
        num_warps=kernel.launch.num_warps * compiled.num_stages,
    )
    result = run_kernel(compiled.program, img, launch)
    assert np.allclose(img.read_array("y"), want)
    sim = simulate_kernel(result.traces, wasp_gpu())
    baseline_traces = run_kernel(
        kernel.program, kernel.image_factory(), kernel.launch
    ).traces
    base = simulate_kernel(baseline_traces, baseline_a100())
    assert sim.cycles > 0 and base.cycles > 0
