"""Stage splitting details: DCE, rewrites, barrier placement."""

from repro.core.compiler.extraction import plan_extraction
from repro.core.compiler.pdg import build_pdg
from repro.core.compiler.stagesplit import (
    build_stage_programs,
    partner_tile_key,
    tag_keys,
)
from repro.isa import Opcode, ProgramBuilder, QueueRef
from tests.conftest import build_gather_program, build_stream_program


def _split(program):
    work = program.clone()
    plan = plan_extraction(build_pdg(work))
    tag_keys(work)
    return build_stage_programs(work, plan), plan


def test_partner_tile_key():
    assert partner_tile_key("tile0_A") == "tile0_B"
    assert partner_tile_key("tile0_B") == "tile0_A"
    assert partner_tile_key("tile0") == "tile0"


def test_stream_split_producer_has_no_stores():
    stages, _ = _split(build_stream_program(64, 64, 256))
    producer = stages[0].program
    opcodes = [i.opcode for i in producer.instructions()]
    assert Opcode.STG not in opcodes
    assert Opcode.LDG in opcodes
    # The producer's LDG pushes into a queue.
    load = next(i for i in producer.instructions()
                if i.opcode is Opcode.LDG)
    assert isinstance(load.dst, QueueRef)


def test_stream_split_consumer_pops_instead_of_loading():
    stages, _ = _split(build_stream_program(64, 64, 256))
    consumer = stages[-1].program
    opcodes = [i.opcode for i in consumer.instructions()]
    assert Opcode.LDG not in opcodes
    assert Opcode.STG in opcodes
    pops = [i for i in consumer.instructions() if i.queue_pops()]
    assert len(pops) == 1


def test_dce_removes_dead_address_arithmetic_from_consumer():
    """The consumer must not recompute the producer's load address."""
    stages, _ = _split(build_stream_program(64, 64, 256))
    producer = stages[0].program
    consumer = stages[-1].program
    # Producer: entry setup + loop {2 IADDs + LDG + induction + cmp +
    # branch}.  Consumer drops the load-address IADD chain.
    producer_adds = sum(
        1 for i in producer.instructions() if i.opcode is Opcode.IADD
    )
    consumer_adds = sum(
        1 for i in consumer.instructions() if i.opcode is Opcode.IADD
    )
    assert consumer_adds <= producer_adds


def test_control_skeleton_replicated_in_every_stage():
    stages, _ = _split(build_gather_program(64, 64, 256, 512))
    assert len(stages) == 3
    for stage in stages:
        opcodes = [i.opcode for i in stage.program.instructions()]
        assert Opcode.BRA in opcodes
        assert Opcode.ISETP in opcodes
        assert Opcode.EXIT in opcodes


def test_middle_stage_pops_and_pushes():
    stages, _ = _split(build_gather_program(64, 64, 256, 512))
    middle = stages[1]
    assert middle.queue_pops and middle.queue_pushes
    assert middle.queue_pops != middle.queue_pushes


def test_queue_pop_guard_matches_original_load():
    """A guarded load's pop must carry the same guard."""
    b = ProgramBuilder("guarded")
    i = b.mov(0)
    b.label("loop")
    p_active = b.isetp("lt", i, 4)
    addr = b.iadd(i, 64)
    v = b.reg()
    b.emit(Opcode.LDG, dst=v, srcs=[addr], guard=p_active)
    out = b.iadd(i, 512)
    b.emit(Opcode.STG, srcs=[out, v], guard=p_active)
    b.iadd(i, 1, dst=i)
    p = b.isetp("lt", i, 8)
    b.bra("loop", guard=p)
    b.label("end")
    b.exit()
    prog = b.finish()
    stages, plan = _split(prog)
    if len(stages) < 2:
        return  # guard analysis may demote; nothing to check
    consumer = stages[-1].program
    pops = [i for i in consumer.instructions() if i.queue_pops()]
    producer_loads = [
        i for i in stages[0].program.instructions()
        if i.opcode is Opcode.LDG
    ]
    assert pops and producer_loads
    assert pops[0].guard is not None
    assert producer_loads[0].guard is not None


def test_stage_programs_validate():
    for setup in (
        build_stream_program(64, 64, 256),
        build_gather_program(64, 64, 256, 512),
    ):
        stages, _ = _split(setup)
        for stage in stages:
            stage.program.validate()
