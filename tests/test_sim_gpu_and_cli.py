"""simulate_* API surface, SimResult helpers, error types, and the CLI."""

import pytest

import repro
from repro.cli import build_parser, main
from repro.errors import (
    CompilerError,
    DeadlockError,
    ExecutionError,
    IneligibleKernelError,
    IsaError,
    ReproError,
    ResourceError,
    SimulationError,
    ValidationError,
)
from repro.fexec import run_kernel
from repro.isa.opcodes import InstrCategory
from repro.sim import simulate_kernel, simulate_program
from repro.sim.config import baseline_a100


def test_error_hierarchy():
    for exc in (
        IsaError, ValidationError, CompilerError, IneligibleKernelError,
        ExecutionError, DeadlockError, SimulationError, ResourceError,
    ):
        assert issubclass(exc, ReproError)
    assert issubclass(ValidationError, IsaError)
    assert issubclass(DeadlockError, ExecutionError)
    assert issubclass(ResourceError, SimulationError)


def test_public_api_exports():
    assert repro.__version__
    assert callable(repro.WaspCompiler)
    assert callable(repro.simulate_program)
    assert callable(repro.run_kernel)


def test_simulate_program_matches_simulate_kernel(stream_setup):
    program, image_factory, launch, _ = stream_setup
    via_program = simulate_program(
        program, image_factory(), launch, baseline_a100()
    )
    traces = run_kernel(program, image_factory(), launch).traces
    via_traces = simulate_kernel(traces, baseline_a100())
    assert via_program.cycles == via_traces.cycles
    assert via_program.issued_total == via_traces.issued_total


def test_sim_result_category_fraction(stream_setup):
    program, image_factory, launch, _ = stream_setup
    result = simulate_program(
        program, image_factory(), launch, baseline_a100()
    )
    fractions = [
        result.category_fraction(c) for c in InstrCategory
    ]
    assert abs(sum(fractions) - 1.0) < 1e-9
    assert result.category_fraction(InstrCategory.MEMORY) > 0
    assert result.dynamic_instructions == result.issued_total


def test_empty_kernel_list_rejected():
    with pytest.raises(SimulationError):
        simulate_kernel([], baseline_a100())


def test_cli_parser_and_list(capsys):
    parser = build_parser()
    args = parser.parse_args(["fig14", "--scale", "0.1"])
    assert args.artifact == "fig14" and args.scale == 0.1
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig14" in out and "table4" in out


def test_cli_runs_table4(capsys):
    assert main(["table4"]) == 0
    out = capsys.readouterr().out
    assert "Table IV" in out


def test_cli_runs_small_figure(capsys):
    assert main(["fig16", "--scale", "0.25",
                 "--benchmarks", "pointnet"]) == 0
    out = capsys.readouterr().out
    assert "Figure 16" in out


def test_cli_rejects_unknown_artifact():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fig99"])


def test_cli_profile_subcommand(tmp_path, capsys):
    trace_path = tmp_path / "trace.json"
    json_path = tmp_path / "profile.json"
    assert main([
        "profile", "pointnet", "--scale", "0.1", "--no-cache",
        "--trace-out", str(trace_path), "--json-out", str(json_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "Stall breakdown" in out
    assert "active warp-cycles" in out
    assert "perfetto" in out

    import json

    from repro.profiling import validate_chrome_trace

    trace = json.loads(trace_path.read_text())
    assert validate_chrome_trace(trace) == []
    doc = json.loads(json_path.read_text())
    assert doc["schema"] == "repro-profile-report-v1"
    assert doc["kernels"]
    kernel = doc["kernels"][0]
    total = sum(kernel["stalls_by_cause"].values())
    assert total + kernel["issued_total"] == pytest.approx(
        kernel["active_warp_cycles"]
    )


def test_cli_profile_rejects_unknown_names(capsys):
    with pytest.raises(SystemExit):
        main(["profile", "no_such_benchmark", "--no-cache"])
    with pytest.raises(SystemExit):
        main(["profile", "pointnet", "--config", "NOPE", "--no-cache"])


def test_cli_artifact_profile_flags(tmp_path, capsys):
    sweep_json = tmp_path / "sweep.json"
    trace_path = tmp_path / "fig3.json"
    assert main([
        "fig3", "--scale", "0.1", "--no-cache", "--profile",
        "--profile-json", str(sweep_json), "--trace-out", str(trace_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "sweep stalls:" in out

    import json

    doc = json.loads(sweep_json.read_text())
    assert doc["schema"] == "repro-sweep-profile-v1"
    assert doc["artifact"] == "fig3"
    assert "trace_cache" in doc
    assert trace_path.exists()
