"""Docs stay honest: DESIGN.md's rule table mirrors the registry.

The §6c rule-taxonomy table is hand-written prose; the verifier's
``RULES`` dict is the registry the code enforces.  This test expands
the table's compressed cells (``C001–C005`` ranges, ``Q001/Q002``
lists) and asserts exact equality with the registered rule ids, so a
rule added or removed in code without a doc update fails CI — and vice
versa.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.analysis.diagnostics import RULES, rules_table_lines

REPO_ROOT = Path(__file__).resolve().parents[1]
DESIGN = REPO_ROOT / "DESIGN.md"
EXPERIMENTS = REPO_ROOT / "EXPERIMENTS.md"


def _section(text: str, heading: str) -> str:
    """The body of one ``## heading`` until the next ``## `` heading."""
    pattern = re.compile(
        rf"^## {re.escape(heading)}.*?$(.*?)(?=^## |\Z)",
        re.MULTILINE | re.DOTALL,
    )
    match = pattern.search(text)
    assert match is not None, f"DESIGN.md lacks a '## {heading}' section"
    return match.group(1)


def _expand_rule_cell(cell: str) -> list[str]:
    """``C001–C005`` -> the five ids; ``Q001/Q002`` -> the two ids."""
    cell = cell.strip()
    rules: list[str] = []
    for part in cell.split("/"):
        part = part.strip()
        range_match = re.fullmatch(
            r"([A-Z])(\d{3})\s*[–-]\s*(?:([A-Z]))?(\d{3})", part
        )
        if range_match:
            family, lo, hi_family, hi = range_match.groups()
            assert hi_family in (None, family), cell
            for num in range(int(lo), int(hi) + 1):
                rules.append(f"{family}{num:03d}")
        else:
            assert re.fullmatch(r"[A-Z]\d{3}", part), (
                f"unparseable rule cell: {cell!r}"
            )
            rules.append(part)
    return rules


def _documented_rules() -> list[str]:
    section = _section(DESIGN.read_text(), "6c.")
    documented: list[str] = []
    for line in section.splitlines():
        if not line.startswith("|"):
            continue
        cells = [c.strip() for c in line.strip("|").split("|")]
        first = cells[0]
        if first in ("rule", "---", "") or set(first) <= {"-"}:
            continue
        documented.extend(
            f"WASP-{rule}" for rule in _expand_rule_cell(first)
        )
    return documented


def test_design_6c_table_matches_rule_registry():
    documented = _documented_rules()
    assert len(documented) == len(set(documented)), (
        "duplicate rules in the DESIGN.md §6c table"
    )
    missing = sorted(set(RULES) - set(documented))
    stale = sorted(set(documented) - set(RULES))
    assert not missing, f"registered but undocumented in §6c: {missing}"
    assert not stale, f"documented in §6c but not registered: {stale}"


def test_rules_table_lists_exactly_the_registry():
    lines = rules_table_lines()
    listed = [
        line.split()[0]
        for line in lines
        if line.startswith("WASP-")
    ]
    assert listed == sorted(RULES)
    # Severity column matches the registry's default severity.
    for line in lines:
        if not line.startswith("WASP-"):
            continue
        rule, severity = line.split()[:2]
        assert severity == RULES[rule][0].value


def test_design_documents_perfmodel_section():
    text = DESIGN.read_text()
    section = _section(text, "6d.")
    # The blind spots the calibration suite works around must stay
    # documented next to the model they qualify.
    for phrase in (
        "divergent gather",
        "Little",
        "issue",
        "bandwidth",
    ):
        assert phrase.lower() in section.lower(), (
            f"DESIGN.md §6d no longer mentions {phrase!r}"
        )


def test_experiments_documents_advise():
    text = EXPERIMENTS.read_text()
    assert "repro advise" in text
    for token in (
        "--margin", "--no-simulate", "--json-out",
        "repro-advise-report-v1",
    ):
        assert token in text, f"EXPERIMENTS.md advise docs lack {token}"
