"""SARIF export, deterministic diagnostic ordering, strict lint exits.

SARIF structure is validated against the parts of the 2.1.0 schema the
exporter exercises (required top-level keys, rule metadata wiring,
result/rule index consistency) so downstream viewers and GitHub code
scanning can rely on the document shape without a network fetch.
"""

from __future__ import annotations

import json
import random

from repro.analysis.diagnostics import (
    RULES,
    Diagnostic,
    DiagnosticReport,
    Severity,
)
from repro.analysis.lint import KernelLint, LintResult
from repro.analysis.sarif import (
    SARIF_SCHEMA_URI,
    SARIF_VERSION,
    sarif_from_lint,
)
from repro.cli import run_lint


def _report(*diags: Diagnostic) -> DiagnosticReport:
    report = DiagnosticReport()
    report.extend(list(diags))
    return report


def _lint_result(report: DiagnosticReport) -> LintResult:
    return LintResult(
        scale=0.25,
        kernels=[
            KernelLint(
                benchmark="bench",
                kernel="k",
                specialized=True,
                num_stages=2,
                report=report,
            )
        ],
    )


def _sample_diags() -> list[Diagnostic]:
    return [
        Diagnostic(
            rule="WASP-S001",
            message="cross-stage race",
            kernel="k",
            stage=0,
            block="s0_loop",
            instruction="STS R1, R2",
            hint="add a barrier",
        ),
        Diagnostic(
            rule="WASP-D003",
            message="suspicious wait",
            kernel="k",
            stage=1,
            block="s1_loop",
        ),
        Diagnostic(rule="WASP-S003", message="unresolved access"),
    ]


# -- SARIF structure -----------------------------------------------------


def test_sarif_document_shape():
    doc = sarif_from_lint(_lint_result(_report(*_sample_diags())))
    assert doc["$schema"] == SARIF_SCHEMA_URI
    assert doc["version"] == SARIF_VERSION == "2.1.0"
    assert len(doc["runs"]) == 1
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    assert run["columnKind"] == "unicodeCodePoints"
    json.dumps(doc)  # must be pure JSON, no stray objects


def test_sarif_rules_cover_the_whole_catalogue():
    doc = sarif_from_lint(_lint_result(_report()))
    rules = doc["runs"][0]["tool"]["driver"]["rules"]
    assert [r["id"] for r in rules] == sorted(RULES)
    for rule in rules:
        assert rule["shortDescription"]["text"]
        assert rule["defaultConfiguration"]["level"] in {
            "error", "warning", "note",
        }


def test_sarif_results_reference_valid_rule_indices():
    doc = sarif_from_lint(_lint_result(_report(*_sample_diags())))
    run = doc["runs"][0]
    rules = run["tool"]["driver"]["rules"]
    assert len(run["results"]) == 3
    for result in run["results"]:
        assert rules[result["ruleIndex"]]["id"] == result["ruleId"]
        assert result["message"]["text"]
        assert result["level"] in {"error", "warning", "note"}
    by_rule = {r["ruleId"]: r for r in run["results"]}
    assert by_rule["WASP-S001"]["level"] == "error"
    assert by_rule["WASP-D003"]["level"] == "warning"
    assert by_rule["WASP-S003"]["level"] == "note"
    assert "(hint: add a barrier)" in by_rule["WASP-S001"]["message"]["text"]


def test_sarif_logical_locations_and_properties():
    doc = sarif_from_lint(_lint_result(_report(*_sample_diags())))
    result = doc["runs"][0]["results"][0]
    logical = result["locations"][0]["logicalLocations"][0]
    assert logical["kind"] == "function"
    assert logical["fullyQualifiedName"] == "k::s0_loop"
    assert result["properties"]["stage"] == 0
    assert result["properties"]["instruction"] == "STS R1, R2"


def test_every_registered_rule_round_trips_through_the_exporter():
    """One Diagnostic per catalogue rule (C/Q/D/S/R/T families) must
    export as a SARIF result whose ruleId, ruleIndex and level all
    agree with the catalogue entry — no family is special-cased."""
    assert {r.split("-")[1][0] for r in RULES} == set("CQDSRT")
    diags = [
        Diagnostic(rule=rule_id, message=f"probe for {rule_id}",
                   kernel="k", block="b")
        for rule_id in sorted(RULES)
    ]
    doc = sarif_from_lint(_lint_result(_report(*diags)))
    run = doc["runs"][0]
    rules = run["tool"]["driver"]["rules"]
    exported = {r["ruleId"] for r in run["results"]}
    assert exported == set(RULES)
    levels = {
        Severity.ERROR: "error",
        Severity.WARNING: "warning",
        Severity.INFO: "note",
    }
    for result in run["results"]:
        descriptor = rules[result["ruleIndex"]]
        assert descriptor["id"] == result["ruleId"]
        severity, _ = RULES[result["ruleId"]]
        assert result["level"] == levels[severity]
        assert (
            descriptor["defaultConfiguration"]["level"] == levels[severity]
        )


def test_sarif_from_validate_exports_t_rules():
    from repro.analysis.lint import KernelValidation, ValidateResult
    from repro.analysis.sarif import sarif_from_validate

    report = _report(Diagnostic(
        rule="WASP-T002",
        message="value diverges through queue 1",
        kernel="k",
        stage=1,
        block="s1_loop",
    ))
    doc = sarif_from_validate(ValidateResult(
        scale=0.25,
        kernels=[KernelValidation(
            benchmark="bench", kernel="k", depth=4,
            specialized=True, verdict="not-equivalent", report=report,
        )],
    ))
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-transval"
    assert [r["id"] for r in run["tool"]["driver"]["rules"]] == sorted(RULES)
    (result,) = run["results"]
    assert result["ruleId"] == "WASP-T002"
    assert result["level"] == "error"
    json.dumps(doc)


# -- deterministic diagnostic ordering -----------------------------------


def test_normalized_order_is_shuffle_stable():
    diags = _sample_diags() + [
        Diagnostic(rule="WASP-S001", message="another race", kernel="k"),
    ]
    baseline = _report(*diags).normalized()
    expected = [(d.rule, d.message) for d in baseline]
    rng = random.Random(7)
    for _ in range(5):
        shuffled = list(diags)
        rng.shuffle(shuffled)
        got = _report(*shuffled).normalized()
        assert [(d.rule, d.message) for d in got] == expected


def test_normalized_sorts_by_rule_then_site_then_message():
    report = _report(*_sample_diags()).normalized()
    keys = [(d.rule, d.message) for d in report]
    assert keys == sorted(keys)


def test_normalized_deduplicates_identical_findings():
    diag = _sample_diags()[0]
    report = _report(diag, diag, diag).normalized()
    assert len(report) == 1


def test_normalized_is_idempotent():
    report = _report(*_sample_diags()).normalized()
    again = report.normalized()
    assert [d for d in again] == [d for d in report]


# -- strict lint exit codes ----------------------------------------------


def _fake_lint(monkeypatch, severity: Severity):
    rule = {
        Severity.ERROR: "WASP-S001",
        Severity.WARNING: "WASP-D003",
    }[severity]
    result = _lint_result(
        _report(Diagnostic(rule=rule, message="synthetic"))
    )

    import repro.analysis.lint as lint_module

    monkeypatch.setattr(
        lint_module, "lint_benchmarks",
        lambda names, scale, validate=False: result,
    )


def test_lint_warnings_exit_zero_without_strict(monkeypatch, capsys):
    _fake_lint(monkeypatch, Severity.WARNING)
    assert run_lint(["--all"]) == 0
    capsys.readouterr()


def test_lint_warnings_exit_nonzero_with_strict(monkeypatch, capsys):
    _fake_lint(monkeypatch, Severity.WARNING)
    assert run_lint(["--all", "--strict"]) == 1
    capsys.readouterr()


def test_lint_errors_exit_nonzero_either_way(monkeypatch, capsys):
    _fake_lint(monkeypatch, Severity.ERROR)
    assert run_lint(["--all"]) == 1
    capsys.readouterr()


def test_lint_sarif_flag_writes_the_log(monkeypatch, capsys, tmp_path):
    _fake_lint(monkeypatch, Severity.WARNING)
    out = tmp_path / "findings.sarif"
    assert run_lint(["--all", "--sarif", str(out)]) == 0
    capsys.readouterr()
    doc = json.loads(out.read_text())
    assert doc["version"] == "2.1.0"
    assert doc["runs"][0]["results"][0]["ruleId"] == "WASP-D003"
