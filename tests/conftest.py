"""Shared fixtures: small canonical kernels and helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fexec import LaunchConfig, MemoryImage, run_kernel
from repro.isa import ProgramBuilder, SpecialReg

WIDTH = 16  # narrower warps keep the functional runs fast in tests


def build_stream_program(n: int, base_in: int, base_out: int,
                         fp_ops: int = 1):
    """out[i] = chain(in[i]): the Figure 11 streaming shape."""
    b = ProgramBuilder("t_stream")
    lane = b.special(SpecialReg.LANE_ID)
    wid = b.special(SpecialReg.WARP_ID)
    nw = b.special(SpecialReg.NUM_WARPS)
    i = b.mov(0)
    tid = b.imad(wid, WIDTH, lane)
    stride = b.imul(nw, WIDTH)
    b.label("loop")
    pos = b.iadd(tid, i)
    addr_in = b.iadd(pos, base_in)
    val = b.ldg(addr_in)
    for _ in range(fp_ops):
        val = b.ffma(val, 2.0, 1.0)
    addr_out = b.iadd(pos, base_out)
    b.stg(addr_out, val)
    b.iadd(i, stride, dst=i)
    pred = b.isetp("lt", i, n)
    b.bra("loop", guard=pred)
    b.label("done")
    b.exit()
    return b.finish()


def build_gather_program(n: int, idx_base: int, data_base: int,
                         out_base: int):
    """out[i] = data[idx[i]]: the Figure 12 gather shape."""
    b = ProgramBuilder("t_gather")
    lane = b.special(SpecialReg.LANE_ID)
    wid = b.special(SpecialReg.WARP_ID)
    nw = b.special(SpecialReg.NUM_WARPS)
    i = b.mov(0)
    tid = b.imad(wid, WIDTH, lane)
    stride = b.imul(nw, WIDTH)
    b.label("loop")
    pos = b.iadd(tid, i)
    ia = b.iadd(pos, idx_base)
    index = b.ldg(ia)
    da = b.iadd(index, data_base)
    value = b.ldg(da)
    value = b.fmul(value, 3.0)
    oa = b.iadd(pos, out_base)
    b.stg(oa, value)
    b.iadd(i, stride, dst=i)
    pred = b.isetp("lt", i, n)
    b.bra("loop", guard=pred)
    b.label("done")
    b.exit()
    return b.finish()


def build_tile_program(tiles: int, tile_words: int, a_base: int,
                       out_base: int, num_warps: int):
    """Per-tile LDGSTS between BAR.SYNCs then SMEM compute (Figure 13)."""
    b = ProgramBuilder("t_tile")
    buf = b.alloc_smem("buf", tile_words)
    lane = b.special(SpecialReg.LANE_ID)
    wid = b.special(SpecialReg.WARP_ID)
    tid = b.imad(wid, WIDTH, lane)
    t = b.mov(0)
    acc = b.mov(0.0)
    b.label("tile_loop")
    b.bar_sync("tb")
    ga = b.imad(t, tile_words, tid)
    ga2 = b.iadd(ga, a_base)
    sa = b.iadd(tid, buf)
    b.ldgsts(ga2, sa, buffer="buf")
    b.bar_sync("tb")
    sv = b.lds(sa, buffer="buf")
    b.fadd(acc, sv, dst=acc)
    b.iadd(t, 1, dst=t)
    pred = b.isetp("lt", t, tiles)
    b.bra("tile_loop", guard=pred)
    b.label("epilog")
    oa = b.iadd(tid, out_base)
    b.stg(oa, acc)
    b.exit()
    return b.finish()


@pytest.fixture
def stream_setup():
    """(program, image_factory, launch, expected) for the stream kernel."""
    n = 128
    values = np.arange(n, dtype=float)

    def image_factory() -> MemoryImage:
        img = MemoryImage(1 << 12)
        img.alloc("a", n)
        img.write_array("a", values)
        img.alloc("o", n)
        return img

    layout = image_factory()
    program = build_stream_program(n, layout.base("a"), layout.base("o"))
    launch = LaunchConfig(num_warps=2, warp_width=WIDTH)
    expected = values * 2.0 + 1.0
    return program, image_factory, launch, expected


@pytest.fixture
def gather_setup():
    """(program, image_factory, launch, expected) for the gather kernel."""
    n, m = 128, 256
    rng = np.random.default_rng(123)
    idx = rng.integers(0, m, n)
    data = rng.uniform(-1, 1, m)

    def image_factory() -> MemoryImage:
        img = MemoryImage(1 << 12)
        img.alloc("idx", n)
        img.write_array("idx", idx)
        img.alloc("data", m)
        img.write_array("data", data)
        img.alloc("out", n)
        return img

    layout = image_factory()
    program = build_gather_program(
        n, layout.base("idx"), layout.base("data"), layout.base("out")
    )
    launch = LaunchConfig(num_warps=2, warp_width=WIDTH)
    expected = data[idx] * 3.0
    return program, image_factory, launch, expected


@pytest.fixture
def tile_setup():
    """(program, image_factory, launch, expected) for the tile kernel."""
    tiles, num_warps = 4, 2
    tile_words = num_warps * WIDTH
    n = tiles * tile_words
    values = np.arange(n, dtype=float) * 0.5

    def image_factory() -> MemoryImage:
        img = MemoryImage(1 << 12)
        img.alloc("a", n)
        img.write_array("a", values)
        img.alloc("out", tile_words)
        return img

    layout = image_factory()
    program = build_tile_program(
        tiles, tile_words, layout.base("a"), layout.base("out"), num_warps
    )
    launch = LaunchConfig(num_warps=num_warps, warp_width=WIDTH)
    expected = values.reshape(tiles, tile_words).sum(axis=0)
    return program, image_factory, launch, expected


def run_and_read(program, image_factory, launch, array: str) -> np.ndarray:
    """Execute functionally and read back an output array."""
    img = image_factory()
    run_kernel(program, img, launch)
    return img.read_array(array)
