"""Translation validation: execution-free equivalence certificates.

Tentpole acceptance, statically checked end to end:

* every registry workload certifies ``equivalent`` under the standard
  compiler option sets at ring depths 2, 4 and 8 — zero WASP-T errors,
  zero abstentions (one symbolic check per depth via slot residues);
* each committed fuzz corruption is proven ``not-equivalent`` without
  executing anything, while its clean compile certifies;
* the compiler post-pass is on by default, opt-out, raises only on
  ``not-equivalent`` (never on abstention), and attaches the report to
  the :class:`CompileResult`;
* an unspecialized compile is the identity relation: trivially
  equivalent with nothing walked.
"""

from __future__ import annotations

import pytest

from repro.analysis.transval import (
    ABSTAIN,
    EQUIVALENT,
    NOT_EQUIVALENT,
    validate_or_raise,
    validate_programs,
)
from repro.analysis.transval.expr import (
    Const,
    LoopIdx,
    Sym,
    add,
    ite,
    mul,
    stable_repr,
    subst_loop,
)
from repro.core.compiler import WaspCompiler, WaspCompilerOptions
from repro.errors import VerificationError
from repro.fuzz.generator import build_kernel
from repro.fuzz.mutate import apply_mutation
from repro.fuzz.spec import generate_spec
from repro.workloads.registry import get_benchmark

# ---------------------------------------------------------------------------
# Expression language


def test_add_flattens_folds_and_sorts_deterministically():
    a, b = Sym("a"), Sym("b")
    e1 = add(a, add(Const(2), b), Const(3))
    e2 = add(Const(5), b, a)
    assert stable_repr(e1) == stable_repr(e2)


def test_mul_distributes_over_add():
    a, b = Sym("a"), Sym("b")
    left = mul(Const(4), add(a, b))
    right = add(mul(Const(4), a), mul(Const(4), b))
    assert stable_repr(left) == stable_repr(right)


def test_mul_collects_repeated_terms():
    a = Sym("a")
    assert stable_repr(add(a, a)) == stable_repr(mul(Const(2), a))


def test_ite_folds_constant_conditions_and_equal_arms():
    a, b = Sym("a"), Sym("b")
    assert stable_repr(ite(Const(1), a, b)) == stable_repr(a)
    assert stable_repr(ite(Const(0), a, b)) == stable_repr(b)
    assert stable_repr(ite(Sym("c"), a, a)) == stable_repr(a)


def test_subst_loop_replaces_only_the_named_loop_index():
    e = add(LoopIdx("i"), LoopIdx("j"))
    got = subst_loop(e, "i", Const(7))
    assert stable_repr(got) == stable_repr(add(Const(7), LoopIdx("j")))


# ---------------------------------------------------------------------------
# Registry certification (subset of the CI sweep; full cross runs in
# the `validate` CI job via `repro validate --all --options standard`)

_BENCHES = ["pointnet", "spmv1_g3", "flash_attention"]
_OPTION_SETS = [
    ("sw-queues", WaspCompilerOptions(enable_tma_offload=False)),
    ("full", WaspCompilerOptions()),
    ("two-stage", WaspCompilerOptions(max_stages=2)),
    ("tiny-queues", WaspCompilerOptions(queue_size=2,
                                        enable_tma_offload=False)),
]


def _bench_name(name):
    from repro.workloads.registry import all_benchmarks

    return name if name in all_benchmarks() else None


@pytest.mark.parametrize("bench_name", _BENCHES)
@pytest.mark.parametrize(
    "opts_name,options", _OPTION_SETS, ids=[n for n, _ in _OPTION_SETS]
)
@pytest.mark.parametrize("depth", [2, 4, 8])
def test_registry_compiles_certify(bench_name, opts_name, options, depth):
    from dataclasses import replace

    if _bench_name(bench_name) is None:
        pytest.skip(f"benchmark {bench_name} not registered")
    bench = get_benchmark(bench_name, 0.25)
    opts = replace(
        options, pipeline_depth=depth, verify=False, validate=False
    )
    for kernel in bench.kernels:
        result = WaspCompiler(opts).compile(
            kernel.program, kernel.launch.num_warps
        )
        report = validate_programs(kernel.program, result.program)
        assert report.verdict == EQUIVALENT, (
            f"{bench_name}/{kernel.name} [{opts_name}] depth={depth}: "
            + "; ".join(d.format() for d in report.report)
        )
        assert not report.abstentions
        if result.specialized:
            assert report.matched_stores == report.source_stores > 0


# ---------------------------------------------------------------------------
# Static flagging of the committed fuzz corruptions

_MUTANTS = [
    ("drop-pop", 2),
    ("drop-push", 2),
    ("arrive-to-wait", 7),
    ("skip-slot-advance", 5),
    ("depth-off-by-one", 5),
    ("stale-phase-read", 5),
]


def _specialized(seed, mutation):
    """First compiled variant of ``seed`` with a ``mutation`` site."""
    kernel = build_kernel(generate_spec(seed))
    for options in (
        WaspCompilerOptions(enable_tma_offload=False,
                            verify=False, validate=False),
        WaspCompilerOptions(verify=False, validate=False),
    ):
        result = WaspCompiler(options).compile(
            kernel.program, num_warps=kernel.launch.num_warps
        )
        if not result.specialized:
            continue
        mutated = apply_mutation(result.program, mutation)
        if mutated is not None:
            return kernel.program, result.program, mutated
    pytest.fail(f"no {mutation} site in any variant of seed {seed}")


@pytest.mark.parametrize(
    "mutation,seed", _MUTANTS, ids=[m for m, _ in _MUTANTS]
)
def test_mutants_flagged_statically(mutation, seed):
    source, clean, mutated = _specialized(seed, mutation)

    good = validate_programs(source, clean)
    assert good.verdict == EQUIVALENT, (
        f"clean compile of seed {seed} failed to certify: "
        + "; ".join(d.format() for d in good.report)
    )

    bad = validate_programs(source, mutated)
    assert bad.verdict == NOT_EQUIVALENT, (
        f"validator blind to {mutation} (verdict {bad.verdict!r})"
    )
    assert bad.t_errors
    assert all(d.rule.startswith("WASP-T") for d in bad.t_errors)


# ---------------------------------------------------------------------------
# Compiler post-pass wiring


def _fuzz_kernel(seed=2):
    return build_kernel(generate_spec(seed))


def test_compile_attaches_certificate_by_default():
    kernel = _fuzz_kernel()
    result = WaspCompiler(
        WaspCompilerOptions(enable_tma_offload=False)
    ).compile(kernel.program, kernel.launch.num_warps)
    assert result.specialized
    assert result.transval is not None
    assert result.transval.verdict == EQUIVALENT


def test_compile_validate_opt_out():
    kernel = _fuzz_kernel()
    result = WaspCompiler(
        WaspCompilerOptions(enable_tma_offload=False, validate=False)
    ).compile(kernel.program, kernel.launch.num_warps)
    assert result.transval is None


def test_validate_option_round_trips_through_json():
    opts = WaspCompilerOptions(validate=False)
    assert WaspCompilerOptions.from_json(opts.to_json()) == opts


def test_validate_or_raise_raises_only_on_not_equivalent():
    source, _clean, mutated = _specialized(2, "drop-pop")
    with pytest.raises(VerificationError) as exc:
        validate_or_raise(source, mutated)
    assert any(
        d.rule.startswith("WASP-T") for d in exc.value.diagnostics
    )


def test_unspecialized_compile_is_identity():
    kernel = _fuzz_kernel()
    # max_stages=1 cannot split anything: the compiler returns the
    # original program and the relation holds trivially.
    report = validate_programs(kernel.program, kernel.program)
    assert report.verdict == EQUIVALENT
    assert not report.specialized
    assert report.source_stores == 0


# ---------------------------------------------------------------------------
# Verdict taxonomy and telemetry


def test_verdict_constants_are_distinct():
    assert len({EQUIVALENT, NOT_EQUIVALENT, ABSTAIN}) == 3


def test_telemetry_counts_verdicts_and_rules():
    from repro.telemetry.registry import TELEMETRY

    kernel = _fuzz_kernel()
    result = WaspCompiler(
        WaspCompilerOptions(enable_tma_offload=False,
                            verify=False, validate=False)
    ).compile(kernel.program, kernel.launch.num_warps)
    was_enabled = TELEMETRY.enabled
    TELEMETRY.reset()
    TELEMETRY.enable()
    try:
        validate_programs(kernel.program, result.program)
        rows = TELEMETRY.snapshot().to_list()
        verdicts = [
            r for r in rows if r["name"] == "repro_transval_verdicts_total"
        ]
        assert verdicts and verdicts[0]["labels"]["verdict"] == EQUIVALENT
    finally:
        TELEMETRY.reset()
        if not was_enabled:
            TELEMETRY.disable()


def test_report_json_shape():
    kernel = _fuzz_kernel()
    result = WaspCompiler(
        WaspCompilerOptions(enable_tma_offload=False,
                            verify=False, validate=False)
    ).compile(kernel.program, kernel.launch.num_warps)
    doc = validate_programs(kernel.program, result.program).to_json()
    assert doc["schema"] == "repro-transval-v1"
    assert doc["verdict"] == EQUIVALENT
    assert doc["num_t_errors"] == 0
    assert doc["num_abstentions"] == 0
    assert doc["matched_stores"] == doc["source_stores"]


# ---------------------------------------------------------------------------
# CLI


def test_cli_validate_exits_zero_on_certified_benchmark(capsys):
    from repro.cli import main

    rc = main(["validate", "pointnet", "--depths", "2,4"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "certified equivalent" in out


def test_cli_validate_corpus_flags_injected_corruptions(capsys):
    from repro.cli import main

    rc = main(["validate", "--corpus"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "certified equivalent" in out


def test_cli_validate_standard_option_sets(capsys):
    from repro.cli import main

    rc = main(["validate", "pointnet", "--options", "standard"])
    capsys.readouterr()
    assert rc == 0


def test_cli_lint_validate_flag(capsys):
    from repro.cli import main

    rc = main(["lint", "pointnet", "--validate", "--verbose"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "clean" in out
