"""WASP-TMA offload pass: affine matching and conservative rejections."""

from repro.core.compiler.extraction import plan_extraction
from repro.core.compiler.pdg import build_pdg
from repro.core.compiler.stagesplit import build_stage_programs, tag_keys
from repro.core.compiler.tma_offload import offload_pipeline
from repro.isa import Opcode, ProgramBuilder, SpecialReg
from tests.conftest import build_gather_program, build_stream_program


def _offload(program):
    work = program.clone()
    plan = plan_extraction(build_pdg(work))
    tag_keys(work)
    stages = build_stage_programs(work, plan)
    report = offload_pipeline(stages)
    return stages, report


def test_stream_loop_offloaded():
    stages, report = _offload(build_stream_program(64, 64, 256))
    assert report.streams == 1
    producer_ops = {i.opcode for i in stages[0].program.instructions()}
    assert Opcode.TMA_STREAM in producer_ops
    assert Opcode.BRA not in {
        i.opcode
        for blk in stages[0].program.blocks
        if blk.label == "loop"
        for i in blk.instructions
    }


def test_gather_pair_fused():
    stages, report = _offload(build_gather_program(64, 64, 256, 512))
    assert report.gathers == 1
    assert report.streams == 0
    producer_ops = {i.opcode for i in stages[0].program.instructions()}
    assert Opcode.TMA_GATHER in producer_ops
    # The middle stage's loop was emptied.
    middle_ops = [
        i.opcode for i in stages[1].program.instructions()
        if i.opcode is Opcode.LDG
    ]
    assert not middle_ops


def _custom_stream(body_extra=None, step_reg=False):
    """A producer-shaped loop with optional pattern-breaking tweaks."""
    b = ProgramBuilder("c")
    lane = b.special(SpecialReg.LANE_ID)
    wid = b.special(SpecialReg.WARP_ID)
    nw = b.special(SpecialReg.NUM_WARPS)
    i = b.mov(0)
    tid = b.imad(wid, 8, lane)
    stride = b.imul(nw, 8)
    b.label("loop")
    pos = b.iadd(tid, i)
    addr = b.iadd(pos, 64)
    v = b.ldg(addr)
    if body_extra == "second_load":
        v2 = b.ldg(b.iadd(addr, 4096))
        v = b.fadd(v, v2)
    out = b.iadd(pos, 512)
    b.stg(out, v)
    b.iadd(i, stride, dst=i)
    p = b.isetp("lt", i, 32)
    b.bra("loop", guard=p)
    b.label("end")
    b.exit()
    return b.finish()


def test_nonaffine_address_keeps_software_loop():
    """A squared index (i*i) defeats the linear model."""
    b = ProgramBuilder("sq")
    i = b.mov(1)
    b.label("loop")
    sq = b.imul(i, i)            # non-linear in the induction variable
    addr = b.iadd(sq, 64)
    v = b.ldg(addr)
    out = b.iadd(i, 512)
    b.stg(out, v)
    b.iadd(i, 1, dst=i)
    p = b.isetp("lt", i, 8)
    b.bra("loop", guard=p)
    b.label("end")
    b.exit()
    prog = b.finish()
    stages, report = _offload(prog)
    assert report.streams == 0
    producer_ops = {i.opcode for i in stages[0].program.instructions()}
    assert Opcode.TMA_STREAM not in producer_ops
    assert Opcode.LDG in producer_ops


def test_offloaded_trip_count_arithmetic_present():
    stages, report = _offload(build_stream_program(64, 64, 256))
    assert report.streams == 1
    producer_ops = [i.opcode for i in stages[0].program.instructions()]
    assert Opcode.IDIV in producer_ops  # ceil-div trip count
    assert Opcode.MAX in producer_ops   # do-while executes at least once


def test_two_loads_same_loop_not_stream_offloaded():
    """The single-load loop pattern is required; extra loads abort."""
    prog = _custom_stream(body_extra="second_load")
    work = prog.clone()
    plan = plan_extraction(build_pdg(work))
    tag_keys(work)
    stages = build_stage_programs(work, plan)
    report = offload_pipeline(stages)
    # Both loads share the producer stage, so the loop has two LDGs and
    # cannot become one TMA.STREAM.
    assert report.streams == 0


def test_offload_report_counts_consistent():
    stages, report = _offload(build_gather_program(64, 64, 256, 512))
    tma_instrs = [
        i
        for sp in stages
        for i in sp.program.instructions()
        if i.opcode in (Opcode.TMA_STREAM, Opcode.TMA_GATHER)
    ]
    assert len(tma_instrs) == report.streams + report.gathers
