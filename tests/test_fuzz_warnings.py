"""W-level verifier findings surface in fuzz reports instead of being
dropped: per seed, per compiled variant, through the verdict cache,
and into the ``repro fuzz`` summary."""

from __future__ import annotations

import json

import pytest

from repro.analysis.diagnostics import Diagnostic
from repro.core.compiler import WaspCompiler
from repro.experiments.runner import GLOBAL_CACHE
from repro.fexec.trace_store import TraceStore
from repro.fuzz.oracle import OPTION_SETS, FuzzWarning, run_oracle
from repro.fuzz.runner import FuzzReport, run_fuzz
from repro.fuzz.spec import generate_spec


@pytest.fixture
def tmp_cache(tmp_path):
    saved = GLOBAL_CACHE.store
    GLOBAL_CACHE.store = TraceStore(str(tmp_path / "cache"))
    try:
        yield GLOBAL_CACHE.store
    finally:
        GLOBAL_CACHE.store = saved


class _WarningCompiler(WaspCompiler):
    """Compiler whose specialized results carry a synthetic Q006.

    The generated corpus is too healthy to trip credit-pressure
    warnings naturally, so the surfacing path is exercised by
    injecting one at the only seam the oracle sees: the compile
    result's diagnostics list.
    """

    def compile(self, program, num_warps):
        result = super().compile(program, num_warps)
        if result.specialized:
            result.diagnostics = list(result.diagnostics) + [
                Diagnostic(
                    rule="WASP-Q006",
                    message="synthetic credit pressure",
                    kernel=program.name,
                    stage=0,
                )
            ]
        return result


@pytest.fixture
def warning_compiler(monkeypatch):
    monkeypatch.setattr(
        "repro.fuzz.oracle.WaspCompiler", _WarningCompiler
    )


def test_fuzz_warning_json_round_trip():
    warning = FuzzWarning(
        seed=7, options_name="full", rule="WASP-Q006",
        message="credit pressure", location="k/stage 0",
    )
    back = FuzzWarning.from_json(
        json.loads(json.dumps(warning.to_json()))
    )
    assert back == warning
    assert "WASP-Q006" in warning.summary()
    assert "seed=7" in warning.summary()


def test_healthy_seeds_carry_no_warnings():
    report = run_oracle(
        generate_spec(0), metamorphic=False, use_verdict_cache=False
    )
    assert report.passed
    assert report.warnings == []


def test_oracle_surfaces_warnings_per_variant(warning_compiler):
    spec = generate_spec(1)
    report = run_oracle(
        spec, metamorphic=False, use_verdict_cache=False
    )
    assert report.passed, "warnings must not fail the oracle"
    assert {w.options_name for w in report.warnings} == set(
        report.specialized_under
    )
    for warning in report.warnings:
        assert warning.seed == spec.seed
        assert warning.rule == "WASP-Q006"
        assert warning.location


def test_warnings_survive_the_verdict_cache(warning_compiler, tmp_cache):
    spec = generate_spec(2)
    first = run_oracle(spec, metamorphic=False)
    assert first.passed and not first.from_cache
    assert first.warnings
    second = run_oracle(spec, metamorphic=False)
    assert second.from_cache
    assert second.warnings == first.warnings


def test_fuzz_report_aggregates_warnings(warning_compiler):
    report = run_fuzz(
        seeds=2, jobs=1, shrink=False, metamorphic=False,
        use_verdict_cache=False,
    )
    assert report.passed
    assert len(report.warnings) == 2 * len(OPTION_SETS)
    assert report.warning_counts == {
        "WASP-Q006": 2 * len(OPTION_SETS)
    }
    doc = report.to_json()
    assert doc["warning_counts"] == report.warning_counts
    assert len(doc["warnings"]) == len(report.warnings)
    text = "\n".join(report.summary_lines())
    assert "verifier warnings" in text
    assert "WASP-Q006" in text


def test_summary_lines_silent_without_warnings():
    report = FuzzReport(seeds_requested=1, seeds_run=1)
    assert all(
        "verifier warnings" not in line
        for line in report.summary_lines()
    )
