"""Instruction construction, structural queries and cloning."""

import pytest

from repro.errors import IsaError
from repro.isa import (
    Immediate,
    Instruction,
    InstrCategory,
    Opcode,
    Predicate,
    QueueRef,
    Register,
)


def test_defaults_category_from_opcode():
    ldg = Instruction(Opcode.LDG, dst=Register(0), srcs=[Register(1)])
    assert ldg.category is InstrCategory.MEMORY
    add = Instruction(Opcode.IADD, dst=Register(0),
                      srcs=[Register(1), Immediate(1)])
    assert add.category is InstrCategory.COMPUTE


def test_bra_requires_target():
    with pytest.raises(IsaError):
        Instruction(Opcode.BRA)


def test_barrier_requires_id():
    with pytest.raises(IsaError):
        Instruction(Opcode.BAR_SYNC)


def test_defined_and_used_registers():
    instr = Instruction(
        Opcode.IMAD, dst=Register(5),
        srcs=[Register(1), Immediate(4), Register(2)],
    )
    assert instr.defined_registers() == [Register(5)]
    assert instr.used_registers() == [Register(1), Register(2)]


def test_guard_counts_as_predicate_use():
    instr = Instruction(
        Opcode.MOV, dst=Register(0), srcs=[Immediate(1)],
        guard=Predicate(2),
    )
    assert Predicate(2) in instr.used_predicates()


def test_queue_push_and_pop_detection():
    push = Instruction(Opcode.LDG, dst=QueueRef(1), srcs=[Register(0)])
    assert push.queue_pushes() == [QueueRef(1)]
    assert push.queue_pops() == []
    pop = Instruction(Opcode.MOV, dst=Register(0), srcs=[QueueRef(1)])
    assert pop.queue_pops() == [QueueRef(1)]
    assert pop.queue_pushes() == []


def test_replace_src():
    instr = Instruction(
        Opcode.IADD, dst=Register(0), srcs=[Register(1), Register(1)]
    )
    instr.replace_src(Register(1), Register(9))
    assert instr.srcs == [Register(9), Register(9)]


def test_clone_is_independent_with_fresh_uid():
    instr = Instruction(
        Opcode.IADD, dst=Register(0), srcs=[Register(1), Immediate(2)],
        attrs={"key": 7},
    )
    clone = instr.clone()
    assert clone.uid != instr.uid
    assert clone.srcs == instr.srcs
    assert clone.attrs == instr.attrs
    clone.attrs["key"] = 8
    assert instr.attrs["key"] == 7


def test_repr_includes_guard_and_operands():
    instr = Instruction(
        Opcode.BRA, target="loop", guard=Predicate(0), guard_negated=True
    )
    text = repr(instr)
    assert "@!P0" in text and "loop" in text
