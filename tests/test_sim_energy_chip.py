"""Energy proxy and chip-level wrapper."""

import pytest

from repro.core.compiler import WaspCompiler, WaspCompilerOptions
from repro.errors import SimulationError
from repro.fexec import run_kernel
from repro.sim.chip import ChipResult, estimate_chip_time, partition_blocks
from repro.sim.config import baseline_a100, wasp_gpu
from repro.sim.energy import EnergyModel, estimate_energy, simulate_with_energy


def _traces(program, image_factory, launch):
    return run_kernel(program, image_factory(), launch).traces


def test_energy_breakdown_positive_and_consistent(stream_setup):
    program, image_factory, launch, _ = stream_setup
    traces = _traces(program, image_factory, launch)
    result, energy = simulate_with_energy(traces, baseline_a100())
    assert energy.total > 0
    parts = energy.as_dict()
    assert parts["total"] == pytest.approx(
        sum(v for k, v in parts.items() if k != "total")
    )
    assert energy.dram > 0  # cold misses hit DRAM
    assert energy.issue == result.issued_total * EnergyModel().issue_pj


def test_tma_offload_reduces_issue_energy(stream_setup):
    """The Section III-E efficiency claim, quantified."""
    from dataclasses import replace

    program, image_factory, launch, _ = stream_setup
    no_tma = WaspCompiler(
        WaspCompilerOptions(enable_tma_offload=False)
    ).compile(program, num_warps=launch.num_warps)
    with_tma = WaspCompiler().compile(program, num_warps=launch.num_warps)

    def energy_of(compiled):
        spec_launch = replace(
            launch, num_warps=launch.num_warps * compiled.num_stages
        )
        traces = _traces(compiled.program, image_factory, spec_launch)
        _, energy = simulate_with_energy(traces, wasp_gpu())
        return energy

    e_soft = energy_of(no_tma)
    e_tma = energy_of(with_tma)
    assert e_tma.issue < e_soft.issue
    assert e_tma.register_file < e_soft.register_file
    # DRAM traffic is the same data either way.
    assert e_tma.dram == pytest.approx(e_soft.dram, rel=0.1)


def test_estimate_energy_scales_with_model():
    from repro.sim.gpu import SimResult
    from repro.sim.occupancy import Occupancy
    from repro.isa.opcodes import InstrCategory

    result = SimResult(
        kernel_name="k", cycles=100, issued_total=10,
        issued_by_category={InstrCategory.COMPUTE: 4},
        issued_by_stage={}, queue_overhead_instrs=0,
        l2_utilization=0, dram_utilization=0, smem_utilization=0,
        l1_hit_rate=0,
        occupancy=Occupancy(1, 1, 0, "warp_slots"),
    )
    small = estimate_energy(result, 5, 2, 10, model=EnergyModel())
    double = estimate_energy(
        result, 5, 2, 10,
        model=EnergyModel(dram_sector_pj=600.0),
    )
    assert double.dram == pytest.approx(2 * small.dram)


def test_partition_blocks_round_robin():
    parts = partition_blocks(10, 4)
    assert [len(p) for p in parts] == [3, 3, 2, 2]
    assert parts[0] == [0, 4, 8]
    with pytest.raises(SimulationError):
        partition_blocks(0, 4)


def test_partition_fewer_blocks_than_sms():
    parts = partition_blocks(3, 8)
    assert len(parts) == 3
    assert all(len(p) == 1 for p in parts)


def test_chip_estimate_scales_with_grid(stream_setup):
    program, image_factory, launch, _ = stream_setup
    traces = _traces(program, image_factory, launch)
    small = estimate_chip_time(traces, baseline_a100(), num_sms=108,
                               grid_blocks=432)
    big = estimate_chip_time(traces, baseline_a100(), num_sms=108,
                             grid_blocks=432 * 8)
    assert isinstance(small, ChipResult)
    assert small.blocks_per_sm == 4
    assert big.blocks_per_sm == 32
    # Work scales linearly; once occupancy saturates, time must grow.
    assert big.sm_result.issued_total == 8 * small.sm_result.issued_total
    assert big.cycles > small.cycles


def test_chip_estimate_rejects_empty():
    with pytest.raises(SimulationError):
        estimate_chip_time([], baseline_a100())
