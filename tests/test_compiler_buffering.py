"""LDGSTS fusion, sync-pair tagging, and double-buffer unrolling."""

import numpy as np

from repro.core.compiler.buffering import (
    apply_double_buffering,
    find_loops,
    fuse_ldgsts,
    innermost_loop,
    tag_tile_sync_pairs,
)
from repro.fexec import LaunchConfig, MemoryImage, run_kernel
from repro.isa import Opcode, ProgramBuilder
from tests.conftest import WIDTH, build_tile_program


def _tile_image(tiles: int, tile_words: int, values=None):
    img = MemoryImage(1 << 12)
    n = tiles * tile_words
    img.alloc("a", n)
    if values is not None:
        img.write_array("a", values)
    img.alloc("out", tile_words)
    return img


def _tile_prog(tiles: int = 4, num_warps: int = 2):
    tile_words = num_warps * WIDTH
    layout = _tile_image(tiles, tile_words)
    return build_tile_program(
        tiles, tile_words, layout.base("a"), layout.base("out"), num_warps
    )


def test_fuse_creates_ldgsts_from_ldg_sts_pair():
    b = ProgramBuilder("f")
    b.alloc_smem("buf", 8)
    v = b.ldg(b.mov(64))
    b.sts(b.mov(0), v, buffer="buf")
    b.exit()
    prog = b.finish()
    assert fuse_ldgsts(prog) == 1
    opcodes = [i.opcode for i in prog.instructions()]
    assert Opcode.LDGSTS in opcodes
    assert Opcode.STS not in opcodes
    assert Opcode.LDG not in opcodes
    fused = next(
        i for i in prog.instructions() if i.opcode is Opcode.LDGSTS
    )
    assert fused.attrs["smem_buffer"] == "buf"


def test_fuse_skips_value_with_extra_consumer():
    b = ProgramBuilder("f")
    b.alloc_smem("buf", 8)
    v = b.ldg(b.mov(64))
    b.sts(b.mov(0), v, buffer="buf")
    b.stg(b.mov(128), v)  # second consumer: fusion illegal
    b.exit()
    prog = b.finish()
    assert fuse_ldgsts(prog) == 0


def test_fuse_skips_value_used_as_store_address():
    b = ProgramBuilder("f")
    b.alloc_smem("buf", 8)
    v = b.ldg(b.mov(64))
    b.sts(v, b.mov(1.0), buffer="buf")  # v is the ADDRESS, not the value
    b.exit()
    assert fuse_ldgsts(b.finish()) == 0


def test_tag_tile_sync_pairs():
    prog = _tile_prog()
    fuse_count = fuse_ldgsts(prog)
    assert fuse_count == 0  # the builder already emits LDGSTS
    keys = tag_tile_sync_pairs(prog)
    assert keys == ["tile0"]
    syncs = [
        i for i in prog.instructions() if i.opcode is Opcode.BAR_SYNC
    ]
    roles = [i.attrs.get("tile_roles") for i in syncs]
    assert [("pre", "tile0")] in roles
    assert [("post", "tile0")] in roles


def test_find_loops_detects_backedge():
    prog = _tile_prog()
    loops = find_loops(prog)
    assert len(loops) == 1
    loop = loops[0]
    assert prog.blocks[loop.head_idx].label == "tile_loop"
    assert innermost_loop(prog, loop.head_idx) is not None


def test_double_buffering_unrolls_and_doubles_smem():
    prog = _tile_prog()
    tag_tile_sync_pairs(prog)
    before_smem = prog.smem_words
    keys = apply_double_buffering(prog, smem_capacity_words=1 << 16)
    assert keys == ["tile0"]
    assert prog.smem_words == 2 * before_smem
    assert "buf__db" in prog.smem_buffers
    labels = [blk.label for blk in prog.blocks]
    assert "tile_loop__db" in labels
    tile_keys = {
        i.attrs.get("tile_key")
        for i in prog.instructions()
        if i.opcode is Opcode.LDGSTS
    }
    assert tile_keys == {"tile0_A", "tile0_B"}


def test_double_buffering_respects_smem_capacity():
    prog = _tile_prog()
    tag_tile_sync_pairs(prog)
    keys = apply_double_buffering(
        prog, smem_capacity_words=prog.smem_words + 1
    )
    assert keys == []
    assert "buf__db" not in prog.smem_buffers


def test_unrolled_program_still_computes_same_result():
    prog = _tile_prog()
    tag_tile_sync_pairs(prog)
    apply_double_buffering(prog, smem_capacity_words=1 << 16)
    # After unrolling the program still uses plain BAR.SYNC (the
    # per-stage barrier rewrite happens during splitting), so it remains
    # directly executable and must produce the original result.
    n = 4 * 2 * WIDTH
    values = np.arange(n, dtype=float) * 0.5
    launch = LaunchConfig(num_warps=2, warp_width=WIDTH)
    img = _tile_image(4, 2 * WIDTH, values)
    run_kernel(prog, img, launch)
    expected = values.reshape(4, 2 * WIDTH).sum(axis=0)
    assert np.allclose(img.read_array("out"), expected)


def test_odd_trip_count_unroll_is_correct():
    tiles, num_warps = 5, 2  # odd: A,B,A,B,A
    tile_words = num_warps * WIDTH
    prog = _tile_prog(tiles=tiles, num_warps=num_warps)
    tag_tile_sync_pairs(prog)
    assert apply_double_buffering(prog, smem_capacity_words=1 << 16)
    n = tiles * tile_words
    values = np.arange(n, dtype=float)
    img = _tile_image(tiles, tile_words, values)
    run_kernel(prog, img, LaunchConfig(num_warps=num_warps, warp_width=WIDTH))
    expected = values.reshape(tiles, tile_words).sum(axis=0)
    assert np.allclose(img.read_array("out"), expected)
