"""Property-based functional equivalence: original vs warp-specialized.

For randomized kernels drawn from the streaming/gather/multi-input
family, the WASP compiler's output must produce bit-identical global
memory side effects under every compiler option combination — the
central correctness contract of automatic warp specialization.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compiler import WaspCompiler, WaspCompilerOptions
from repro.fexec import LaunchConfig, MemoryImage, run_kernel
from repro.isa import ProgramBuilder, SpecialReg

WIDTH = 8  # small warps keep hypothesis examples fast


@st.composite
def kernel_spec(draw):
    return {
        "num_warps": draw(st.integers(1, 3)),
        "iters_per_warp": draw(st.integers(1, 4)),
        "fp_ops": draw(st.integers(0, 3)),
        "gather_depth": draw(st.integers(0, 2)),
        "num_inputs": draw(st.integers(1, 2)),
        "seed": draw(st.integers(0, 2**16)),
        "scale_imm": draw(st.sampled_from([1.0, 0.5, 2.0, -1.5])),
    }


def _build(spec):
    n = spec["num_warps"] * WIDTH * spec["iters_per_warp"]
    table_words = 128

    def image_factory() -> MemoryImage:
        rng = np.random.default_rng(spec["seed"])
        img = MemoryImage(1 << 12)
        for k in range(spec["num_inputs"]):
            img.alloc(f"in{k}", n)
            if spec["gather_depth"] and k == 0:
                img.write_array(
                    f"in{k}", rng.integers(0, table_words, n)
                )
            else:
                img.write_array(f"in{k}", rng.uniform(-4, 4, n))
        img.alloc("table", table_words)
        img.write_array("table", rng.uniform(-4, 4, table_words))
        img.alloc("table2", table_words)
        img.write_array(
            "table2", rng.integers(0, table_words, table_words)
        )
        img.alloc("out", n)
        return img

    layout = image_factory()
    b = ProgramBuilder("prop_kernel")
    lane = b.special(SpecialReg.LANE_ID)
    wid = b.special(SpecialReg.WARP_ID)
    nw = b.special(SpecialReg.NUM_WARPS)
    i = b.mov(0)
    tid = b.imad(wid, WIDTH, lane)
    stride = b.imul(nw, WIDTH)
    b.label("loop")
    pos = b.iadd(tid, i)
    values = []
    for k in range(spec["num_inputs"]):
        addr = b.iadd(pos, layout.base(f"in{k}"))
        value = b.ldg(addr)
        if k == 0 and spec["gather_depth"] >= 1:
            # value is an index; chase it through table2/table.
            if spec["gather_depth"] == 2:
                addr2 = b.iadd(value, layout.base("table2"))
                value = b.ldg(addr2)
            addr3 = b.iadd(value, layout.base("table"))
            value = b.ldg(addr3)
        values.append(value)
    acc = values[0]
    for value in values[1:]:
        acc = b.fadd(acc, value)
    for _ in range(spec["fp_ops"]):
        acc = b.ffma(acc, spec["scale_imm"], 0.125)
    out_addr = b.iadd(pos, layout.base("out"))
    b.stg(out_addr, acc)
    b.iadd(i, stride, dst=i)
    pred = b.isetp("lt", i, spec["iters_per_warp"] * WIDTH)
    b.bra("loop", guard=pred)
    b.label("done")
    b.exit()
    launch = LaunchConfig(num_warps=spec["num_warps"], warp_width=WIDTH)
    return b.finish(), image_factory, launch


_OPTION_SETS = [
    WaspCompilerOptions(enable_tma_offload=False),
    WaspCompilerOptions(enable_tma_offload=True),
    WaspCompilerOptions(max_stages=2, enable_tma_offload=False),
]


@settings(max_examples=25, deadline=None)
@given(kernel_spec())
def test_specialized_kernel_memory_equivalent(spec):
    program, image_factory, launch, = _build(spec)
    reference = image_factory()
    run_kernel(program, reference, launch)
    want = reference.snapshot()
    for options in _OPTION_SETS:
        result = WaspCompiler(options).compile(
            program, num_warps=launch.num_warps
        )
        if not result.specialized:
            continue
        img = image_factory()
        spec_launch = replace(
            launch, num_warps=launch.num_warps * result.num_stages
        )
        run_kernel(result.program, img, spec_launch)
        assert np.array_equal(img.snapshot(), want), (
            f"divergence with options {options}"
        )


@settings(max_examples=15, deadline=None)
@given(kernel_spec())
def test_specialized_kernel_stage_structure(spec):
    """Structural invariants of every plan the compiler accepts."""
    program, _, launch = _build(spec)
    result = WaspCompiler().compile(program, num_warps=launch.num_warps)
    if not result.specialized:
        return
    tb_spec = result.program.tb_spec
    assert tb_spec.num_stages == result.num_stages
    assert len(tb_spec.stage_registers) == result.num_stages
    for queue in tb_spec.queues:
        assert queue.src_stage < queue.dst_stage  # acyclic stage graph
    assert tb_spec.num_warps == launch.num_warps * result.num_stages


@settings(max_examples=15, deadline=None)
@given(kernel_spec(), st.integers(2, 4))
def test_equivalence_across_thread_block_counts(spec, num_tbs):
    """Specialization must commute with multi-TB launches."""
    program, image_factory, launch = _build(spec)
    launch = replace(launch, num_thread_blocks=num_tbs)
    reference = image_factory()
    run_kernel(program, reference, launch)
    result = WaspCompiler().compile(program, num_warps=launch.num_warps)
    if not result.specialized:
        return
    img = image_factory()
    run_kernel(
        result.program, img,
        replace(launch, num_warps=launch.num_warps * result.num_stages),
    )
    assert np.array_equal(img.snapshot(), reference.snapshot())
