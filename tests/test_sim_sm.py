"""SM core loop: issue, latency exposure, overlap, policies, TMA."""

from dataclasses import replace

from repro.core.compiler import WaspCompiler, WaspCompilerOptions
from repro.fexec import run_kernel
from repro.sim import simulate_kernel
from repro.sim.config import (
    QueueImpl,
    SchedulingPolicy,
    WaspFeatures,
    baseline_a100,
    wasp_gpu,
)


def _traces(program, image_factory, launch):
    return run_kernel(program, image_factory(), launch).traces


def _spec_launch(launch, result):
    return replace(launch, num_warps=launch.num_warps * result.num_stages)


def test_cycles_positive_and_instrs_counted(stream_setup):
    program, image_factory, launch, _ = stream_setup
    traces = _traces(program, image_factory, launch)
    result = simulate_kernel(traces, baseline_a100())
    assert result.cycles > 0
    assert result.issued_total == sum(len(w) for t in traces for w in t.warps)


def test_memory_latency_exposed_in_dependent_chain(stream_setup):
    """With one warp, every load's use stalls for the memory latency."""
    program, image_factory, launch, _ = stream_setup
    one_warp = replace(launch, num_warps=1)
    traces = _traces(program, image_factory, one_warp)
    result = simulate_kernel(traces, baseline_a100())
    loads = sum(
        1 for t in traces for w in t.warps for d in w.instrs
        if d.opcode.value == "LDG"
    )
    # Far slower than pure issue: latency dominates.
    assert result.cycles > loads * 100


def test_more_warps_hide_latency(stream_setup):
    program, image_factory, launch, _ = stream_setup
    slow = simulate_kernel(
        _traces(program, image_factory, replace(launch, num_warps=1)),
        baseline_a100(),
    )
    fast = simulate_kernel(
        _traces(program, image_factory, replace(launch, num_warps=4)),
        baseline_a100(),
    )
    assert fast.cycles < slow.cycles


def test_wasp_pipeline_beats_baseline_kernel(gather_setup):
    program, image_factory, launch, _ = gather_setup
    base = simulate_kernel(
        _traces(program, image_factory, launch), baseline_a100()
    )
    compiled = WaspCompiler().compile(program, num_warps=launch.num_warps)
    wasp = simulate_kernel(
        _traces(compiled.program, image_factory,
                _spec_launch(launch, compiled)),
        wasp_gpu(),
    )
    assert wasp.cycles < base.cycles


def test_smem_queue_impl_slower_than_rfq(gather_setup):
    program, image_factory, launch, _ = gather_setup
    compiled = WaspCompiler(
        WaspCompilerOptions(enable_tma_offload=False)
    ).compile(program, num_warps=launch.num_warps)
    traces = _traces(
        compiled.program, image_factory, _spec_launch(launch, compiled)
    )
    rfq = simulate_kernel(traces, wasp_gpu())
    smem_features = replace(
        WaspFeatures.full(), queue_impl=QueueImpl.SMEM
    )
    smem = simulate_kernel(
        traces, replace(baseline_a100(), features=smem_features)
    )
    assert smem.queue_overhead_instrs > 0
    assert rfq.queue_overhead_instrs == 0
    assert smem.cycles > rfq.cycles


def test_tile_pipeline_with_double_buffering_runs(tile_setup):
    program, image_factory, launch, _ = tile_setup
    base = simulate_kernel(
        _traces(program, image_factory, launch), baseline_a100()
    )
    compiled = WaspCompiler().compile(program, num_warps=launch.num_warps)
    assert compiled.double_buffered
    wasp = simulate_kernel(
        _traces(compiled.program, image_factory,
                _spec_launch(launch, compiled)),
        wasp_gpu(),
    )
    assert wasp.cycles > 0
    assert wasp.cycles <= base.cycles * 1.5  # sanity bound


def test_tma_offload_reduces_issued_instructions(stream_setup):
    program, image_factory, launch, _ = stream_setup
    no_tma = WaspCompiler(
        WaspCompilerOptions(enable_tma_offload=False)
    ).compile(program, num_warps=launch.num_warps)
    with_tma = WaspCompiler().compile(program, num_warps=launch.num_warps)
    r_no = simulate_kernel(
        _traces(no_tma.program, image_factory, _spec_launch(launch, no_tma)),
        wasp_gpu(),
    )
    r_tma = simulate_kernel(
        _traces(with_tma.program, image_factory,
                _spec_launch(launch, with_tma)),
        wasp_gpu(),
    )
    assert r_tma.issued_total < r_no.issued_total


def test_scheduling_policies_all_run_and_terminate(gather_setup):
    program, image_factory, launch, _ = gather_setup
    compiled = WaspCompiler(
        WaspCompilerOptions(enable_tma_offload=False)
    ).compile(program, num_warps=launch.num_warps)
    traces = _traces(
        compiled.program, image_factory, _spec_launch(launch, compiled)
    )
    cycles = {}
    for policy in SchedulingPolicy:
        features = replace(
            WaspFeatures.full(),
            pipeline_scheduling=True,
            scheduling_policy=policy,
        )
        result = simulate_kernel(
            traces, replace(baseline_a100(), features=features)
        )
        cycles[policy] = result.cycles
        assert result.cycles > 0
    assert len(set(cycles.values())) >= 1  # all completed


def test_group_pipeline_mapping_runs(gather_setup):
    program, image_factory, launch, _ = gather_setup
    compiled = WaspCompiler().compile(program, num_warps=launch.num_warps)
    traces = _traces(
        compiled.program, image_factory, _spec_launch(launch, compiled)
    )
    for group in (False, True):
        features = replace(
            WaspFeatures.full(), group_pipeline_mapping=group
        )
        result = simulate_kernel(
            traces, replace(wasp_gpu(), features=features)
        )
        assert result.cycles > 0


def test_multi_tb_executes_all_blocks(stream_setup):
    program, image_factory, launch, _ = stream_setup
    single = simulate_kernel(
        _traces(program, image_factory, launch), baseline_a100()
    )
    multi = simulate_kernel(
        _traces(program, image_factory,
                replace(launch, num_thread_blocks=4)),
        baseline_a100(),
    )
    assert multi.tbs_completed == 4
    assert multi.issued_total == 4 * single.issued_total
    # Concurrency means 4x the work takes well under 4x the time.
    assert multi.cycles < 4 * single.cycles


def test_bandwidth_scaling_monotone(stream_setup):
    program, image_factory, launch, _ = stream_setup
    traces = _traces(
        program, image_factory, replace(launch, num_thread_blocks=4)
    )
    half = simulate_kernel(traces, baseline_a100().scale_bandwidth(0.5))
    full = simulate_kernel(traces, baseline_a100())
    double = simulate_kernel(traces, baseline_a100().scale_bandwidth(2.0))
    assert half.cycles >= full.cycles >= double.cycles


def test_timeline_buckets_emitted(stream_setup):
    program, image_factory, launch, _ = stream_setup
    result = simulate_kernel(
        _traces(program, image_factory, launch), baseline_a100()
    )
    assert result.timeline
    for _, compute, memory in result.timeline:
        assert 0.0 <= compute
        assert 0.0 <= memory <= 1.0
