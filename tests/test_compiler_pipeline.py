"""End-to-end compiler behaviour: the Figure 11/12/13 transformations
plus functional equivalence of the specialized programs."""

import numpy as np

from repro.core.compiler import WaspCompiler, WaspCompilerOptions
from repro.fexec import run_kernel
from repro.isa import Opcode, ProgramBuilder
from repro.isa.operands import SpecialReg, SpecialRegister


def _specialized_launch(launch, result):
    from dataclasses import replace

    return replace(launch, num_warps=launch.num_warps * result.num_stages)


def _equivalent(setup, options=None, output="out"):
    program, image_factory, launch, expected = setup
    compiler = WaspCompiler(options or WaspCompilerOptions())
    result = compiler.compile(program, num_warps=launch.num_warps)
    assert result.specialized
    img = image_factory()
    run_kernel(result.program, img, _specialized_launch(launch, result))
    assert np.allclose(img.read_array(output), expected)
    return result


def test_stream_specialization_figure11(stream_setup):
    result = _equivalent(stream_setup, output="o")
    assert result.num_stages == 2
    spec = result.program.tb_spec
    assert len(spec.queues) == 1
    queue = spec.queues[0]
    assert (queue.src_stage, queue.dst_stage) == (0, 1)


def test_gather_specialization_figure12(gather_setup):
    result = _equivalent(
        gather_setup, WaspCompilerOptions(enable_tma_offload=False)
    )
    assert result.num_stages == 3
    spec = result.program.tb_spec
    pairs = {(q.src_stage, q.dst_stage) for q in spec.queues}
    assert pairs == {(0, 1), (1, 2)}


def test_gather_tma_fusion_figure8c(gather_setup):
    result = _equivalent(gather_setup)
    assert result.offload is not None and result.offload.gathers == 1
    assert result.dropped_stages == 1
    assert result.num_stages == 2
    opcodes = {i.opcode for i in result.program.instructions()}
    assert Opcode.TMA_GATHER in opcodes
    assert Opcode.LDG not in opcodes


def test_tile_specialization_figure13(tile_setup):
    result = _equivalent(
        tile_setup, WaspCompilerOptions(double_buffering=False)
    )
    assert result.num_stages == 2
    assert result.fused_ldgsts == 0  # builder emits LDGSTS directly
    opcodes = [i.opcode for i in result.program.instructions()]
    assert Opcode.BAR_ARRIVE in opcodes and Opcode.BAR_WAIT in opcodes
    assert Opcode.BAR_SYNC not in opcodes


def test_tile_double_buffering_figure10(tile_setup):
    result = _equivalent(tile_setup)
    assert result.double_buffered == ["tile0"]
    spec = result.program.tb_spec
    assert "tile0_A_filled" in spec.barrier_expected
    assert "tile0_B_filled" in spec.barrier_expected
    assert spec.barrier_initial.get("tile0_A_empty", 0) > 0
    program, image_factory, launch, expected = tile_setup
    assert result.program.smem_words == 2 * program.smem_words


def test_jump_table_dispatches_on_pipe_stage(stream_setup):
    program, _, launch, _ = stream_setup
    result = WaspCompiler().compile(program, num_warps=launch.num_warps)
    first_block = result.program.blocks[0]
    assert first_block.label.startswith("jump_table")
    setp = first_block.instructions[0]
    assert setp.opcode is Opcode.ISETP
    assert SpecialRegister(SpecialReg.PIPE_STAGE_ID) in setp.srcs


def test_special_register_rewrite(stream_setup):
    program, _, launch, _ = stream_setup
    result = WaspCompiler().compile(program, num_warps=launch.num_warps)
    specials = {
        src.which
        for instr in result.program.instructions()
        for src in instr.srcs
        if isinstance(src, SpecialRegister)
    }
    assert SpecialReg.WARP_ID not in specials
    assert SpecialReg.NUM_WARPS not in specials
    assert SpecialReg.STAGE_WARP_ID in specials


def test_stage_registers_compacted(stream_setup):
    program, _, launch, _ = stream_setup
    # Without TMA offload (which synthesizes count arithmetic) no stage
    # can need more registers than the original program.
    result = WaspCompiler(
        WaspCompilerOptions(enable_tma_offload=False)
    ).compile(program, num_warps=launch.num_warps)
    assert result.specialized
    assert all(r >= 1 for r in result.stage_registers)
    assert max(result.stage_registers) <= program.register_count()


def test_unspecializable_kernel_returns_original():
    b = ProgramBuilder("pure_compute")
    r = b.mov(1.0)
    for _ in range(4):
        r = b.ffma(r, 2.0, 1.0)
    b.stg(b.mov(64), r)
    b.exit()
    prog = b.finish()
    result = WaspCompiler().compile(prog, num_warps=2)
    assert not result.specialized
    assert result.program is prog
    assert result.reason


def test_compile_does_not_mutate_input(stream_setup):
    program, _, launch, _ = stream_setup
    before = program.to_text()
    WaspCompiler().compile(program, num_warps=launch.num_warps)
    assert program.to_text() == before


def test_queue_size_option_propagates(stream_setup):
    program, _, launch, _ = stream_setup
    result = WaspCompiler(WaspCompilerOptions(queue_size=8)).compile(
        program, num_warps=launch.num_warps
    )
    assert all(q.size == 8 for q in result.program.tb_spec.queues)


def test_stream_tma_offload_removes_producer_loop(stream_setup):
    program, image_factory, launch, expected = stream_setup
    result = WaspCompiler().compile(program, num_warps=launch.num_warps)
    assert result.offload is not None and result.offload.streams == 1
    opcodes = [i.opcode for i in result.program.instructions()]
    assert Opcode.TMA_STREAM in opcodes
    # Producer stage must contain no LDG anymore.
    producer_section = [
        i
        for blk in result.program.blocks
        if blk.label.startswith("s0_")
        for i in blk.instructions
    ]
    assert all(i.opcode is not Opcode.LDG for i in producer_section)
    img = image_factory()
    run_kernel(result.program, img, _specialized_launch(launch, result))
    assert np.allclose(img.read_array("o"), expected)


def test_every_queue_pushed_and_popped_once_per_element(gather_setup):
    program, image_factory, launch, _ = gather_setup
    result = WaspCompiler(
        WaspCompilerOptions(enable_tma_offload=False)
    ).compile(program, num_warps=launch.num_warps)
    img = image_factory()
    exec_result = run_kernel(
        result.program, img, _specialized_launch(launch, result)
    )
    trace = exec_result.traces[0]
    pushes = {qid: 0 for qid in trace.queue_lengths}
    pops = {qid: 0 for qid in trace.queue_lengths}
    for warp in trace.warps:
        for instr in warp.instrs:
            if instr.queue_push is not None:
                pushes[instr.queue_push] += 1
            if instr.queue_pop is not None:
                pops[instr.queue_pop] += 1
    assert pushes == pops
    assert all(count > 0 for count in pushes.values())
