"""Stage extraction planning: depths, grouping, demotion, queues."""

from repro.core.compiler.extraction import plan_extraction
from repro.core.compiler.merging import group_by_depth
from repro.core.compiler.pdg import build_pdg
from repro.isa import Opcode, ProgramBuilder
from tests.conftest import build_gather_program, build_stream_program


def test_stream_plan_two_stages():
    prog = build_stream_program(64, 64, 256)
    plan = plan_extraction(build_pdg(prog))
    assert plan.num_stages == 2
    assert len(plan.loads) == 1
    load_plan = plan.loads[0]
    assert load_plan.depth == 1
    assert load_plan.stage == 0
    assert load_plan.consumer_stage == plan.compute_stage
    assert load_plan.queue_id == 0


def test_gather_plan_three_stages_with_chained_queues():
    prog = build_gather_program(64, 64, 256, 512)
    plan = plan_extraction(build_pdg(prog))
    assert plan.num_stages == 3
    depths = sorted(p.depth for p in plan.loads)
    assert depths == [1, 2]
    idx_plan = next(p for p in plan.loads if p.depth == 1)
    data_plan = next(p for p in plan.loads if p.depth == 2)
    assert idx_plan.consumer_stage == data_plan.stage
    assert data_plan.consumer_stage == plan.compute_stage
    assert idx_plan.queue_id != data_plan.queue_id


def test_streaming_disabled_yields_single_stage():
    prog = build_stream_program(64, 64, 256)
    plan = plan_extraction(build_pdg(prog), enable_streaming=False)
    assert plan.num_stages == 1
    assert not plan.loads


def test_max_stages_demotes_deepest_loads():
    prog = build_gather_program(64, 64, 256, 512)
    plan = plan_extraction(build_pdg(prog), max_stages=2)
    # Only one memory stage allowed: the depth-2 load is demoted.
    assert plan.num_stages == 2
    assert all(p.depth == 1 for p in plan.loads)
    assert plan.demoted


def test_value_used_by_multiple_stages_demotes_load():
    """A loaded value consumed by compute AND a deeper address chain."""
    b = ProgramBuilder("multi")
    i = b.mov(0)
    b.label("loop")
    pos = b.iadd(i, 64)
    v1 = b.ldg(pos)               # consumed by addr of v2 AND by store
    addr2 = b.iadd(v1, 512)
    v2 = b.ldg(addr2)
    total = b.fadd(v1, v2)
    out = b.iadd(i, 1024)
    b.stg(out, total)
    b.iadd(i, 1, dst=i)
    p = b.isetp("lt", i, 8)
    b.bra("loop", guard=p)
    b.label("end")
    b.exit()
    prog = b.finish()
    plan = plan_extraction(build_pdg(prog))
    demoted_uids = {d.uid for d in plan.demoted}
    planned_uids = {p.load.uid for p in plan.loads}
    pdg = build_pdg(prog)
    v1_load = pdg.global_loads()[0]
    assert v1_load.uid in demoted_uids
    assert v1_load.uid not in planned_uids


def test_dead_load_not_extracted():
    b = ProgramBuilder("dead")
    b.ldg(b.mov(64))  # value never used
    b.stg(b.mov(128), b.mov(1.0))
    b.exit()
    plan = plan_extraction(build_pdg(b.finish()))
    assert plan.num_stages == 1


def test_group_by_depth_orders_and_caps():
    b = ProgramBuilder("g")
    loads = []
    base = b.mov(64)
    prev = base
    for _ in range(3):
        v = b.ldg(prev)
        loads.append(b.program.entry.instructions[-1])
        prev = b.iadd(v, 8)
    b.stg(b.mov(512), prev)
    b.exit()
    depths = {loads[0].uid: 1, loads[1].uid: 2, loads[2].uid: 3}
    groups, demoted = group_by_depth(depths, loads, max_stages=3)
    assert len(groups) == 2
    assert groups[0] == [loads[0]]
    assert groups[1] == [loads[1]]
    assert demoted == [loads[2]]


def test_tile_load_plan_has_no_queue():
    b = ProgramBuilder("tile")
    b.alloc_smem("buf", 32)
    i = b.mov(0)
    b.label("loop")
    b.bar_sync("tb")
    ga = b.iadd(i, 64)
    b.ldgsts(ga, b.mov(0), buffer="buf")
    b.bar_sync("tb")
    v = b.lds(b.mov(0), buffer="buf")
    b.stg(b.iadd(i, 512), v)
    b.iadd(i, 1, dst=i)
    p = b.isetp("lt", i, 4)
    b.bra("loop", guard=p)
    b.label("end")
    b.exit()
    prog = b.finish()
    plan = plan_extraction(build_pdg(prog))
    tile_plans = [p for p in plan.loads if p.is_tile]
    assert len(tile_plans) == 1
    assert tile_plans[0].queue_id is None


def test_stage_closures_cover_address_arithmetic():
    prog = build_stream_program(64, 64, 256)
    pdg = build_pdg(prog)
    plan = plan_extraction(pdg)
    assert len(plan.stage_closures) == 1
    closure_ops = {
        pdg.instr_by_uid[uid].opcode for uid in plan.stage_closures[0]
    }
    assert Opcode.IADD in closure_ops
