"""Warp mapping (Figure 5) and scheduling priority keys (III-D)."""

from repro.core.mapping import (
    group_pipeline_mapping,
    map_warps,
    register_footprint,
    rfq_register_words,
    round_robin_mapping,
)
from repro.core.scheduling import WarpSchedState, priority_key
from repro.core.specs import NamedQueueSpec, ThreadBlockSpec
from repro.sim.config import SchedulingPolicy


def _two_stage_spec():
    """Figure 5's setup: two stages with four warps each."""
    return ThreadBlockSpec(
        num_stages=2,
        warps_per_stage=[[0, 1, 2, 3], [4, 5, 6, 7]],
        stage_registers=[8, 16],
        queues=[NamedQueueSpec(0, 0, 1)],
    )


def test_round_robin_separates_stages():
    """Round-robin lands same-stage warps on the same blocks (the bad
    case in Figure 5): stage 0 = warps 0..3 -> blocks 0..3, stage 1 =
    warps 4..7 -> blocks 0..3 again, so each block holds one warp of
    each stage only by accident of the warp order.  With the paper's
    interleaved warp numbering (stage-major), blocks get imbalanced."""
    mapping = round_robin_mapping(8, 4)
    assert mapping == {0: 0, 1: 1, 2: 2, 3: 3, 4: 0, 5: 1, 6: 2, 7: 3}


def test_group_pipeline_colocates_slices():
    spec = _two_stage_spec()
    mapping = group_pipeline_mapping(spec, 4)
    # Slice k = (warp k of stage 0, warp k of stage 1) on one block.
    for k in range(4):
        assert mapping[k] == mapping[k + 4] == k % 4


def test_group_pipeline_balances_blocks():
    spec = _two_stage_spec()
    mapping = group_pipeline_mapping(spec, 4)
    loads = [0] * 4
    for block in mapping.values():
        loads[block] += 1
    assert loads == [2, 2, 2, 2]


def test_map_warps_falls_back_without_spec():
    assert map_warps(None, 4, 2, use_group_pipeline=True) == \
        round_robin_mapping(4, 2)


def test_register_footprint_modes():
    spec = _two_stage_spec()
    plain = register_footprint(None, 4, 20, 32, per_stage=False)
    assert plain == 20 * 32 * 4
    uniform = register_footprint(spec, 8, 16, 32, per_stage=False)
    per_stage = register_footprint(spec, 8, 16, 32, per_stage=True)
    assert per_stage < uniform


def test_rfq_register_words():
    spec = _two_stage_spec()
    # 1 queue x 4 slices x 32 entries x 32 lanes.
    assert rfq_register_words(spec, 32, 32) == 4 * 32 * 32
    assert rfq_register_words(None, 32, 32) == 0


def _state(stage, incoming=False, full=False, age=0, key=0):
    return WarpSchedState(
        warp_key=key, pipe_stage_id=stage, incoming_ready=incoming,
        incoming_full=full, last_issued=0.0, age=age,
    )


def test_gto_prefers_greedy_then_oldest():
    older = _state(0, age=0, key=1)
    younger = _state(0, age=1, key=2)
    assert priority_key(SchedulingPolicy.GTO, older, None) < \
        priority_key(SchedulingPolicy.GTO, younger, None)
    # Greedy warp wins even if younger.
    assert priority_key(SchedulingPolicy.GTO, younger, 2) < \
        priority_key(SchedulingPolicy.GTO, older, 2)


def test_producer_first_prefers_earlier_stage():
    early = _state(0, age=5, key=1)
    late = _state(2, age=0, key=2)
    assert priority_key(SchedulingPolicy.PRODUCER_FIRST, early, None) < \
        priority_key(SchedulingPolicy.PRODUCER_FIRST, late, None)


def test_consumer_first_prefers_later_stage():
    early = _state(0, key=1)
    late = _state(2, key=2)
    assert priority_key(SchedulingPolicy.CONSUMER_FIRST, late, None) < \
        priority_key(SchedulingPolicy.CONSUMER_FIRST, early, None)


def test_full_ready_producer_priority_order():
    policy = SchedulingPolicy.FULL_READY_PRODUCER
    full = _state(3, full=True, key=1)
    ready = _state(3, incoming=True, key=2)
    early = _state(0, key=3)
    keys = sorted(
        [(priority_key(policy, s, None), s.warp_key)
         for s in (early, ready, full)]
    )
    # Full incoming queues first (drain!), then ready data, then
    # earlier stages.
    assert [k for _, k in keys] == [1, 2, 3]


def test_lrr_rotates_by_last_issue_time():
    a = _state(0, key=1)
    b = _state(0, key=2)
    a.last_issued, b.last_issued = 10.0, 5.0
    assert priority_key(SchedulingPolicy.LRR, b, None) < \
        priority_key(SchedulingPolicy.LRR, a, None)
