"""Functional barrier and queue primitives (unit level)."""

import numpy as np

from repro.fexec.barriers import ArriveWaitBarrier, SyncBarrier
from repro.fexec.queues import FunctionalQueue


def test_functional_queue_fifo_and_counters():
    queue = FunctionalQueue(0)
    queue.push(np.array([1.0]))
    queue.push(np.array([2.0]))
    assert queue.can_pop()
    assert queue.pop()[0] == 1.0
    assert queue.pop()[0] == 2.0
    assert not queue.can_pop()
    assert queue.total_pushed == 2
    assert queue.total_popped == 2
    assert len(queue) == 0


def test_arrive_wait_generations():
    barrier = ArriveWaitBarrier("b", expected=2)
    assert not barrier.can_pass(0)
    barrier.arrive()
    barrier.arrive()
    assert barrier.can_pass(0)
    barrier.wait(0)
    assert not barrier.can_pass(0)   # next generation needs 2 more
    assert barrier.can_pass(1)       # other warp's first wait still ok
    barrier.arrive()
    barrier.arrive()
    assert barrier.can_pass(0)


def test_arrive_wait_initial_credit_self_starts():
    barrier = ArriveWaitBarrier("b", expected=3, initial_credit=3)
    assert barrier.can_pass(0)
    barrier.wait(0)
    assert not barrier.can_pass(0)


def test_sync_barrier_phases():
    barrier = SyncBarrier("tb", num_warps=2)
    barrier.mark_arrived(0)
    assert not barrier.can_pass(0)
    barrier.mark_arrived(1)
    assert barrier.can_pass(0) and barrier.can_pass(1)
    barrier.passed(0)
    barrier.passed(1)
    # Phase 2 starts empty.
    assert not barrier.can_pass(0)
    barrier.mark_arrived(0)
    barrier.mark_arrived(0)  # idempotent within a phase
    assert not barrier.can_pass(0)
    barrier.mark_arrived(1)
    assert barrier.can_pass(0)


def test_sync_barrier_single_warp_trivially_passes():
    barrier = SyncBarrier("tb", num_warps=1)
    barrier.mark_arrived(0)
    assert barrier.can_pass(0)
