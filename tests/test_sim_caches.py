"""Sector cache and bandwidth server behaviour."""

import pytest

from repro.errors import SimulationError
from repro.sim.caches import BandwidthServer, SectorCache


def test_cache_cold_miss_then_hit():
    cache = SectorCache(num_sectors=64, assoc=4)
    assert cache.access(5) is False
    assert cache.access(5) is True
    assert cache.hits == 1 and cache.misses == 1


def test_cache_lru_eviction_within_set():
    cache = SectorCache(num_sectors=4, assoc=2)  # 2 sets
    sets = cache.num_sets
    a, b, c = 0, sets, 2 * sets  # same set
    cache.access(a)
    cache.access(b)
    cache.access(a)      # a most recent
    cache.access(c)      # evicts b
    assert cache.access(a) is True
    assert cache.access(b) is False


def test_cache_hit_rate_and_reset():
    cache = SectorCache(16, 2)
    cache.access(1)
    cache.access(1)
    assert cache.hit_rate() == pytest.approx(0.5)
    cache.reset_stats()
    assert cache.accesses == 0


def test_cache_rejects_bad_geometry():
    with pytest.raises(SimulationError):
        SectorCache(0, 1)


def test_server_idle_request_gets_full_rate():
    server = BandwidthServer(rate_per_cycle=0.5)
    assert server.submit(10.0) == pytest.approx(12.0)


def test_server_queues_back_to_back_requests():
    server = BandwidthServer(rate_per_cycle=1.0)
    t1 = server.submit(0.0)
    t2 = server.submit(0.0)
    t3 = server.submit(0.0)
    assert (t1, t2, t3) == (1.0, 2.0, 3.0)


def test_server_idle_gap_is_not_reclaimed():
    server = BandwidthServer(rate_per_cycle=1.0)
    server.submit(0.0)
    late = server.submit(100.0)
    assert late == pytest.approx(101.0)


def test_server_utilization():
    server = BandwidthServer(rate_per_cycle=2.0)
    for _ in range(10):
        server.submit(0.0)
    assert server.utilization(elapsed=10.0) == pytest.approx(0.5)
    assert server.utilization(elapsed=0.0) == 0.0


def test_server_queue_delay():
    server = BandwidthServer(rate_per_cycle=1.0)
    server.submit(0.0, work=5.0)
    assert server.queue_delay(2.0) == pytest.approx(3.0)
    assert server.queue_delay(10.0) == 0.0


def test_server_rejects_zero_rate():
    with pytest.raises(SimulationError):
        BandwidthServer(0.0)
