"""The options advisor: candidate grid, gating, verification, and the
ISSUE acceptance property — acting on a suggestion is never slower
than the defaults under simulation, on any registry workload."""

from __future__ import annotations

import json

import pytest

from repro.analysis.perfmodel import (
    ADVICE_SCHEMA,
    QUEUE_DEPTHS,
    SUGGESTION_MARGIN,
    advise_kernel,
    advise_workload,
    apply_suggestion,
    enumerate_candidates,
)
from repro.experiments.configs import wasp_gpu_config
from repro.experiments.runner import TraceCache, run_kernel
from repro.workloads import all_benchmarks, get_benchmark

SCALE = 0.25


@pytest.fixture(scope="module")
def cache():
    return TraceCache()


@pytest.fixture(scope="module")
def config():
    return wasp_gpu_config()


# -- candidate enumeration ----------------------------------------------


def test_default_is_candidate_zero(config):
    candidates = enumerate_candidates(config.compiler, config.gpu)
    assert candidates[0].label == "default"
    assert candidates[0].options == config.compiler
    assert candidates[0].rfq_size == config.gpu.rfq_size


def test_candidates_vary_one_knob_each(config):
    default = config.compiler
    for candidate in enumerate_candidates(default, config.gpu)[1:]:
        changed = {
            k for k, v in candidate.options.to_json().items()
            if v != default.to_json()[k]
        }
        assert len(changed) <= 1, candidate.label
        knob = candidate.label.split("=")[0]
        if changed:
            assert changed == {knob}
        # Queue-depth candidates mirror the depth into the modeled
        # hardware capacity; every other candidate keeps the default.
        if knob == "queue_size":
            assert candidate.rfq_size == candidate.options.queue_size
        else:
            assert candidate.rfq_size == config.gpu.rfq_size


def test_queue_depths_enumerated_without_duplicate_default(config):
    candidates = enumerate_candidates(config.compiler, config.gpu)
    depth_labels = {
        c.label for c in candidates if c.label.startswith("queue_size=")
    }
    expected = {
        f"queue_size={d}"
        for d in QUEUE_DEPTHS
        if d != config.compiler.queue_size
    }
    assert depth_labels == expected


def test_tma_toggle_requires_hardware(config):
    candidates = enumerate_candidates(config.compiler, config.gpu)
    has_tma = any(
        c.label.startswith("enable_tma_offload=") for c in candidates
    )
    assert has_tma == config.gpu.features.wasp_tma


# -- advise on one kernel ------------------------------------------------


@pytest.fixture(scope="module")
def spmv_advice(cache, config):
    kernel = get_benchmark("hpcg", scale=SCALE).kernel("spmv_27pt")
    return advise_kernel(kernel, config, cache)


def test_advice_candidates_ranked_by_predicted_cycles(spmv_advice):
    cycles = [c.prediction.cycles for c in spmv_advice.candidates]
    assert cycles == sorted(cycles)


def test_advice_suggestion_clears_margin(spmv_advice):
    advice = spmv_advice
    assert advice.suggestion is not None
    assert advice.predicted_gain >= SUGGESTION_MARGIN
    # The verification gate ran: the suggestion simulated no slower.
    assert advice.simulated_cycles is not None
    assert advice.simulated_suggested_cycles is not None
    assert advice.simulated_suggested_cycles <= advice.simulated_cycles


def test_advice_json_schema(spmv_advice, config):
    doc = json.loads(json.dumps(spmv_advice.to_json()))
    assert doc["kernel"] == "spmv_27pt"
    default = doc["default"]
    assert default["options"] == config.compiler.to_json() | {
        "queue_size": config.gpu.rfq_size
    }
    assert default["predicted_cycles"] > 0
    assert default["bottleneck_stage"] is not None
    assert default["explanation"]
    assert doc["candidates"][0]["label"] in {
        c.label for c in spmv_advice.candidates
    }
    assert doc["suggestion"]["options_delta"]
    assert doc["predicted_gain"] >= SUGGESTION_MARGIN
    assert doc["predicted_error"] is not None


def test_advise_workload_report(cache, config):
    report = advise_workload(
        "hpcg", config, scale=SCALE, cache=cache, simulate=False
    )
    doc = json.loads(json.dumps(report.to_json()))
    assert doc["schema"] == ADVICE_SCHEMA
    assert doc["workload"] == "hpcg"
    assert doc["config"] == config.name
    names = {k["kernel"] for k in doc["kernels"]}
    expected = {
        k.name for k in get_benchmark("hpcg", scale=SCALE).kernels
    }
    assert names == expected
    # simulate=False leaves the calibration fields out.
    assert all("simulated_cycles" not in k for k in doc["kernels"])


def test_apply_suggestion_builds_config(spmv_advice, config):
    suggested = apply_suggestion(config, spmv_advice)
    delta = {
        k: v
        for k, v in suggested.compiler.to_json().items()
        if v != config.compiler.to_json()[k]
    }
    assert delta  # the suggestion changes at least one knob
    if "queue_size" in delta:
        assert suggested.gpu.rfq_size == suggested.compiler.queue_size


def test_apply_suggestion_identity_when_none(config, cache):
    # waxpby is DRAM-bandwidth-bound: no configuration change helps.
    kernel = get_benchmark("hpcg", scale=SCALE).kernel("waxpby")
    advice = advise_kernel(kernel, config, cache, simulate=False)
    assert advice.suggestion is None
    assert apply_suggestion(config, advice) is config


# -- the acceptance property ---------------------------------------------


@pytest.mark.parametrize("workload", all_benchmarks())
def test_suggestions_never_slower_when_simulated(workload, cache, config):
    """ISSUE acceptance: on every registry workload, simulating an
    emitted suggestion is never slower than the default options."""
    report = advise_workload(
        workload, config, scale=SCALE, cache=cache, simulate=True
    )
    kernels = {
        k.name: k
        for k in get_benchmark(workload, scale=SCALE).kernels
    }
    for advice in report.kernels:
        assert advice.simulated_cycles is not None
        if advice.suggestion is None:
            continue
        kernel = kernels[advice.kernel_name]
        default = run_kernel(kernel, config, cache)
        suggested = run_kernel(
            kernel, apply_suggestion(config, advice), cache
        )
        assert suggested.cycles <= default.cycles, (
            f"{workload}/{advice.kernel_name}: suggestion "
            f"{advice.suggestion.label} simulated slower "
            f"({default.cycles:.0f} -> {suggested.cycles:.0f})"
        )
