"""Thread-block specification (Table I) invariants."""

import pytest

from repro.core.specs import (
    NamedQueueSpec,
    ThreadBlockSpec,
    contiguous_stage_assignment,
)
from repro.errors import ValidationError


def _spec():
    return ThreadBlockSpec(
        num_stages=2,
        warps_per_stage=[[0, 1], [2, 3]],
        stage_registers=[8, 24],
        queues=[NamedQueueSpec(0, 0, 1, size=32)],
    )


def test_stage_of_warp_and_back():
    spec = _spec()
    assert spec.stage_of_warp(0) == 0
    assert spec.stage_of_warp(3) == 1
    assert spec.warps_in_stage(1) == [2, 3]
    assert spec.num_warps == 4


def test_unknown_warp_rejected():
    with pytest.raises(ValidationError):
        _spec().stage_of_warp(9)


def test_overlapping_stage_assignment_rejected():
    with pytest.raises(ValidationError):
        ThreadBlockSpec(
            num_stages=2, warps_per_stage=[[0, 1], [1, 2]],
            stage_registers=[4, 4],
        )


def test_queue_stage_bounds_checked():
    with pytest.raises(ValidationError):
        ThreadBlockSpec(
            num_stages=2, warps_per_stage=[[0], [1]],
            stage_registers=[4, 4],
            queues=[NamedQueueSpec(0, 0, 5)],
        )


def test_self_queue_rejected():
    with pytest.raises(ValidationError):
        NamedQueueSpec(0, 1, 1)


def test_queue_size_positive():
    with pytest.raises(ValidationError):
        NamedQueueSpec(0, 0, 1, size=0)


def test_pipeline_slices_pair_kth_warps():
    spec = _spec()
    assert spec.pipeline_slices() == [[0, 2], [1, 3]]


def test_pipeline_slices_uneven_stages():
    spec = ThreadBlockSpec(
        num_stages=2,
        warps_per_stage=[[0], [1, 2]],
        stage_registers=[4, 4],
    )
    assert spec.pipeline_slices() == [[0, 1], [2]]


def test_register_footprints():
    spec = _spec()
    # Uniform: every warp gets the max (24) regs.
    assert spec.uniform_register_footprint(32) == 24 * 32 * 4
    # Per-stage: 2 warps * 8 + 2 warps * 24.
    assert spec.per_stage_register_footprint(32) == (8 * 2 + 24 * 2) * 32
    assert (
        spec.per_stage_register_footprint(32)
        <= spec.uniform_register_footprint(32)
    )


def test_contiguous_assignment():
    assert contiguous_stage_assignment(3, [2, 1, 2]) == [
        [0, 1], [2], [3, 4]
    ]
    with pytest.raises(ValidationError):
        contiguous_stage_assignment(2, [1])


def test_queue_by_id():
    spec = _spec()
    assert spec.queue_by_id(0).dst_stage == 1
    with pytest.raises(ValidationError):
        spec.queue_by_id(9)
