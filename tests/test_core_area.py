"""Table IV area model."""

import pytest

from repro.core.area import AreaParameters, compute_area


def test_default_breakdown_matches_table_iv_structure():
    area = compute_area()
    rows = area.rows()
    names = [name for name, _, _ in rows]
    assert names == [
        "Warp Mapper", "Warp Scheduler", "RFQ Metadata", "WASP-TMA",
        "Total",
    ]
    total = rows[-1][1]
    assert total == pytest.approx(sum(r[1] for r in rows[:-1]))


def test_warp_mapper_matches_paper():
    # 32 CTAs x 132 bits = 528 B/SM ~ 55.7 KB per GPU (paper: ~56 KB).
    area = compute_area()
    assert area.warp_mapper_bytes_per_sm == pytest.approx(528.0)
    assert area.per_gpu_kb("warp_mapper") == pytest.approx(55.7, abs=0.1)


def test_rfq_metadata_matches_paper():
    # 64 warps x 4 x 9 bits = 288 B/SM ~ 30.4 KB per GPU (paper: ~30 KB).
    area = compute_area()
    assert area.per_gpu_kb("rfq_metadata") == pytest.approx(30.4, abs=0.1)


def test_wasp_tma_matches_paper():
    # 2 x 128 B = 256 B/SM = 27 KB per GPU (paper: ~27 KB).
    area = compute_area()
    assert area.per_gpu_kb("wasp_tma") == pytest.approx(27.0, abs=0.1)


def test_total_under_one_percent_proxy():
    """The paper bounds total extra storage well below L2 capacity."""
    area = compute_area()
    total_kb = area.per_gpu_kb("total")
    assert total_kb < 200  # paper: < 162 KB + margin


def test_scaling_with_parameters():
    small = compute_area(AreaParameters(num_sms=54))
    big = compute_area(AreaParameters(num_sms=108))
    assert big.per_gpu_kb("total") == pytest.approx(
        2 * small.per_gpu_kb("total")
    )
    wide = compute_area(AreaParameters(warps_per_sm=128))
    assert wide.rfq_metadata_bytes_per_sm == pytest.approx(
        2 * compute_area().rfq_metadata_bytes_per_sm
    )
