"""The fuzz fan-out: jobs-determinism, REPRO_JOBS, verdict caching,
time budget, and the ``repro fuzz`` CLI."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.experiments.runner import GLOBAL_CACHE
from repro.fexec.trace_store import TraceStore
from repro.fuzz.runner import FuzzReport, run_fuzz

SEEDS = 8


@pytest.fixture
def tmp_cache(tmp_path):
    saved = GLOBAL_CACHE.store
    GLOBAL_CACHE.store = TraceStore(str(tmp_path / "cache"))
    try:
        yield GLOBAL_CACHE.store
    finally:
        GLOBAL_CACHE.store = saved


@pytest.fixture
def no_cache():
    saved = GLOBAL_CACHE.store
    GLOBAL_CACHE.store = None
    try:
        yield
    finally:
        GLOBAL_CACHE.store = saved


def _comparable(report: FuzzReport) -> dict:
    doc = report.to_json()
    # Timing, parallelism, and cache warmth legitimately vary between
    # otherwise-identical runs; everything else must match exactly.
    del doc["wall_seconds"]
    del doc["jobs"]
    del doc["verdict_cache_hits"]
    return doc


def test_jobs_one_and_many_agree(no_cache):
    serial = run_fuzz(seeds=SEEDS, jobs=1, shrink=False,
                      metamorphic=False)
    parallel = run_fuzz(seeds=SEEDS, jobs=3, shrink=False,
                        metamorphic=False)
    assert serial.seeds_run == parallel.seeds_run == SEEDS
    assert _comparable(serial) == _comparable(parallel)


def test_jobs_agree_on_injected_failures(no_cache):
    serial = run_fuzz(seeds=4, jobs=1, shrink=False, inject="drop-push",
                      metamorphic=False)
    parallel = run_fuzz(seeds=4, jobs=2, shrink=False, inject="drop-push",
                        metamorphic=False)
    assert serial.failures and _comparable(serial) == _comparable(parallel)


def test_repro_jobs_env_is_honored(no_cache, monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "2")
    report = run_fuzz(seeds=2, shrink=False, metamorphic=False)
    assert report.jobs == 2


def test_identical_reruns_hit_the_verdict_cache(tmp_cache):
    cold = run_fuzz(seeds=SEEDS, jobs=1, shrink=False)
    assert cold.verdict_cache_hits == 0 and cold.passed
    warm = run_fuzz(seeds=SEEDS, jobs=1, shrink=False)
    assert warm.verdict_cache_hits == SEEDS and warm.passed
    assert _comparable(cold) == _comparable(warm)


def test_verdict_cache_shared_across_jobs(tmp_cache):
    run_fuzz(seeds=SEEDS, jobs=2, shrink=False)
    warm = run_fuzz(seeds=SEEDS, jobs=2, shrink=False)
    assert warm.verdict_cache_hits == SEEDS


def test_time_budget_stops_early(no_cache):
    report = run_fuzz(seeds=50, jobs=1, shrink=False, metamorphic=False,
                      time_budget=0.0)
    assert report.budget_exhausted
    assert report.seeds_run < 50


def test_failures_can_persist_to_corpus(no_cache, tmp_path):
    report = run_fuzz(
        seeds=1, jobs=1, shrink=False, inject="drop-push",
        metamorphic=False, save_corpus=True, corpus_dir=tmp_path,
    )
    assert report.failures
    assert report.corpus_paths
    assert list(tmp_path.glob("*.json"))


def test_report_json_shape(no_cache):
    doc = run_fuzz(seeds=2, jobs=1, shrink=False,
                   metamorphic=False).to_json()
    assert doc["seeds_requested"] == 2
    assert doc["passed"] is True
    assert set(doc["skeleton_counts"]) <= {
        "streaming", "gather", "tiled", "reduction", "mixed"
    }
    json.dumps(doc)  # must be JSON-clean


def test_summary_lines_mention_failures(no_cache):
    report = run_fuzz(seeds=1, jobs=1, shrink=False, inject="drop-push",
                      metamorphic=False)
    text = "\n".join(report.summary_lines())
    assert "FAILURES" in text


class TestCli:
    def test_fuzz_clean_run_exits_zero(self, no_cache, capsys):
        rc = main(["fuzz", "--seeds", "2", "--no-metamorphic",
                   "--no-cache"])
        assert rc == 0
        assert "no failures" in capsys.readouterr().out

    def test_fuzz_inject_expect_failures(self, no_cache, capsys):
        rc = main(["fuzz", "--seeds", "2", "--no-metamorphic",
                   "--no-shrink", "--inject", "drop-push",
                   "--expect-failures", "--no-cache"])
        assert rc == 0
        assert "caught the injected bug" in capsys.readouterr().out

    def test_fuzz_inject_without_expect_exits_nonzero(self, no_cache):
        rc = main(["fuzz", "--seeds", "2", "--no-metamorphic",
                   "--no-shrink", "--inject", "drop-push", "--no-cache"])
        assert rc == 1

    def test_fuzz_unknown_mutation_rejected(self, no_cache):
        with pytest.raises(SystemExit):
            main(["fuzz", "--seeds", "1", "--inject", "nope",
                  "--no-cache"])

    def test_fuzz_json_out(self, no_cache, tmp_path):
        out = tmp_path / "fuzz.json"
        rc = main(["fuzz", "--seeds", "2", "--no-metamorphic",
                   "--json-out", str(out), "--no-cache"])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["seeds_run"] == 2

    def test_fuzz_corpus_replay(self, no_cache, capsys):
        rc = main(["fuzz", "--corpus", "--no-cache"])
        assert rc == 0
        assert "entries hold" in capsys.readouterr().out
