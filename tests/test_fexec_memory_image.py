"""MemoryImage allocation, access and sector math."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.fexec import MemoryImage
from repro.fexec.memory_image import WORDS_PER_SECTOR, sectors_of


def test_alloc_returns_aligned_disjoint_bases():
    img = MemoryImage(1 << 12)
    a = img.alloc("a", 100)
    b = img.alloc("b", 50)
    assert a % WORDS_PER_SECTOR == 0
    assert b % WORDS_PER_SECTOR == 0
    assert b >= a + 100


def test_alloc_duplicate_name_rejected():
    img = MemoryImage(1 << 10)
    img.alloc("a", 8)
    with pytest.raises(ExecutionError):
        img.alloc("a", 8)


def test_alloc_out_of_memory():
    img = MemoryImage(256)
    with pytest.raises(ExecutionError):
        img.alloc("big", 10_000)


def test_write_and_read_array_roundtrip():
    img = MemoryImage(1 << 10)
    img.alloc("a", 16)
    data = np.arange(16, dtype=float)
    img.write_array("a", data)
    assert np.array_equal(img.read_array("a"), data)


def test_write_array_overflow_rejected():
    img = MemoryImage(1 << 10)
    img.alloc("a", 4)
    with pytest.raises(ExecutionError):
        img.write_array("a", np.zeros(5))


def test_vector_load_store():
    img = MemoryImage(1 << 10)
    base = img.alloc("a", 32)
    addrs = np.arange(base, base + 8)
    img.store(addrs, np.arange(8, dtype=float))
    assert np.array_equal(img.load(addrs), np.arange(8, dtype=float))


def test_load_out_of_bounds_rejected():
    img = MemoryImage(64)
    with pytest.raises(ExecutionError):
        img.load(np.array([1 << 20]))


def test_clone_is_deep():
    img = MemoryImage(1 << 10)
    base = img.alloc("a", 8)
    img.store(np.array([base]), np.array([1.0]))
    copy = img.clone()
    copy.store(np.array([base]), np.array([2.0]))
    assert img.load(np.array([base]))[0] == 1.0
    assert copy.base("a") == base


def test_sectors_of_coalescing():
    # 16 consecutive words starting at a sector boundary = 2 sectors.
    assert len(sectors_of(np.arange(0, 16))) == 2
    # Same sector touched by every lane = 1 transaction.
    assert len(sectors_of(np.zeros(32, dtype=np.int64))) == 1
    # Stride-8 words hit one sector each.
    assert len(sectors_of(np.arange(0, 256, 8))) == 32
