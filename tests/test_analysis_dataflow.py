"""Dataflow framework + happens-before engine: deep-pipeline gates.

The acceptance centerpiece: an 8-slot circular-buffer pipeline (deep
modulo-N phase reuse, beyond the retired two-buffer heuristic) verifies
race-free both statically and under the dynamic SMEM sanitizer, while
each deliberate corruption — drop-arrive, phase-off-by-one,
reorder-push — is flagged by *both* layers.
"""

from __future__ import annotations

import pytest

from repro.analysis import verify_program
from repro.analysis.dataflow.framework import (
    DataflowProblem,
    Direction,
    MeetSetLattice,
    MinShiftLattice,
    dominators,
    solve,
)
from repro.analysis.dataflow.hb import analyze_program
from repro.core.specs import NamedQueueSpec, ThreadBlockSpec
from repro.errors import DeadlockError
from repro.fexec import LaunchConfig, MemoryImage, run_kernel
from repro.fuzz.mutate import apply_mutation
from repro.isa import ProgramBuilder
from repro.isa.opcodes import Opcode
from repro.isa.operands import Immediate, QueueRef, SpecialReg

# -- framework: lattices and solver --------------------------------------


def _min_shift_problem(edges, initial):
    lattice = MinShiftLattice()
    nodes = tuple(sorted({n for e in edges for n in e[:2]}))
    succs = {n: tuple(d for s, d, _ in edges if s == n) for n in nodes}
    weights = {(s, d): w for s, d, w in edges}

    def transfer(u, v, value):
        return lattice.add(value, weights[(u, v)])

    return DataflowProblem(
        nodes=nodes,
        successors=succs,
        bottom=lattice.bottom,
        join=lattice.join,
        leq=lattice.leq,
        transfer=transfer,
        initial=initial,
    )


def test_min_shift_solver_takes_the_cheapest_path():
    # Diamond a->{b,c}->d: min-plus distance picks the 0-weight arm.
    problem = _min_shift_problem(
        [("a", "b", 1), ("a", "c", 0), ("b", "d", 0), ("c", "d", 0)],
        {"a": 0.0},
    )
    values = solve(problem)
    assert values["d"] == 0
    assert values["b"] == 1


def test_min_shift_solver_clamps_negative_cycles():
    # A negative cycle would descend forever; the lattice clamps it to
    # -inf so the fixpoint terminates.
    problem = _min_shift_problem(
        [("a", "b", -1), ("b", "a", 0), ("b", "z", 0)],
        {"a": 0.0},
    )
    values = solve(problem)
    assert values["z"] == float("-inf")


def test_unreachable_nodes_keep_bottom():
    problem = _min_shift_problem(
        [("a", "b", 2), ("x", "y", 0)], {"a": 0.0}
    )
    values = solve(problem)
    assert values["b"] == 2
    assert values["x"] == float("inf")
    assert values["y"] == float("inf")


def test_backward_direction_reverses_edges():
    lattice = MinShiftLattice()
    problem = DataflowProblem(
        nodes=("a", "b"),
        successors={"a": ("b",), "b": ()},
        bottom=lattice.bottom,
        join=lattice.join,
        leq=lattice.leq,
        transfer=lambda u, v, value: lattice.add(value, 1),
        initial={"b": 0.0},
        direction=Direction.BACKWARD,
    )
    values = solve(problem)
    assert values["a"] == 1


def test_meet_set_lattice_meets_toward_intersection():
    lattice: MeetSetLattice[str] = MeetSetLattice()
    assert lattice.join(None, frozenset({"x"})) == frozenset({"x"})
    assert lattice.join(
        frozenset({"x", "y"}), frozenset({"y", "z"})
    ) == frozenset({"y"})
    assert lattice.leq(frozenset({"x", "y"}), frozenset({"y"}))
    assert not lattice.leq(frozenset({"y"}), frozenset({"x", "y"}))


def test_dominators_diamond():
    doms = dominators(
        "e",
        ("e", "l", "r", "m"),
        {"e": ("l", "r"), "l": ("m",), "r": ("m",), "m": ()},
    )
    assert doms["m"] == frozenset({"e", "m"})
    assert doms["l"] == frozenset({"e", "l"})


# -- hand-built deep pipelines -------------------------------------------

RING_SLOTS = 8
RING_ITERS = 16  # two full trips around the ring


def build_ring_program(n: int = RING_SLOTS, iters: int = RING_ITERS):
    """N-slot circular-buffer pipeline: stage 0 fills slot ``i % n``,
    stage 1 drains it, filled/empty split barriers per slot, all empty
    barriers start credited (the producer may run ``n`` slots ahead)."""
    b = ProgramBuilder("ring8", smem_words=0)
    bases = [b.alloc_smem(f"ring{k}", 32) for k in range(n)]
    stage_sel = b.special(SpecialReg.PIPE_STAGE_ID)
    lane = b.special(SpecialReg.LANE_ID)

    b.label("jump_table_1")
    p1 = b.isetp("ge", stage_sel, 1)
    b.bra("s1_entry", guard=p1)

    b.label("s0_entry")
    i0 = b.mov(0)
    for k in range(n):
        b.label(f"s0_loop_p{k}")
        b.bar_wait(f"ring{k}_empty")
        saddr = b.iadd(lane, bases[k])
        b.sts(saddr, i0, buffer=f"ring{k}")
        b.bar_arrive(f"ring{k}_filled")
        b.iadd(i0, 1, dst=i0)
        p0 = b.isetp("lt", i0, iters)
        if k < n - 1:
            b.bra("s0_epilog", guard=p0, negated=True)
        else:
            b.bra("s0_loop_p0", guard=p0)
    b.label("s0_epilog")
    b.exit()

    b.label("s1_entry")
    i1 = b.mov(0)
    acc = b.mov(0.0)
    for k in range(n):
        b.label(f"s1_loop_p{k}")
        b.bar_wait(f"ring{k}_filled")
        saddr = b.iadd(lane, bases[k])
        val = b.lds(saddr, buffer=f"ring{k}")
        acc = b.fadd(acc, val, dst=acc)
        b.bar_arrive(f"ring{k}_empty")
        b.iadd(i1, 1, dst=i1)
        p0 = b.isetp("lt", i1, iters)
        if k < n - 1:
            b.bra("s1_epilog", guard=p0, negated=True)
        else:
            b.bra("s1_loop_p0", guard=p0)
    b.label("s1_epilog")
    out = b.iadd(lane, 512)
    b.stg(out, acc)
    b.exit()

    program = b.finish()
    program.tb_spec = ThreadBlockSpec(
        num_stages=2,
        warps_per_stage=[[0], [1]],
        stage_registers=[32, 32],
        smem_words=32 * n,
        barrier_expected={
            f"ring{k}_{kind}": 1
            for k in range(n)
            for kind in ("filled", "empty")
        },
        barrier_initial={f"ring{k}_empty": 1 for k in range(n)},
    )
    return program


def build_queue_program():
    """Two SMEM frames published through a queue: the push is the only
    edge ordering each producer STS before the consumer's LDS."""
    b = ProgramBuilder("qpub", smem_words=0)
    bases = [b.alloc_smem(f"frame{k}", 32) for k in range(2)]
    stage_sel = b.special(SpecialReg.PIPE_STAGE_ID)
    lane = b.special(SpecialReg.LANE_ID)

    b.label("jump_table_1")
    p1 = b.isetp("ge", stage_sel, 1)
    b.bra("s1_entry", guard=p1)

    b.label("s0_entry")
    for k, base in enumerate(bases):
        saddr = b.iadd(lane, base)
        b.sts(saddr, k + 1, buffer=f"frame{k}")
        b.emit(Opcode.MOV, dst=QueueRef(0), srcs=[Immediate(k)])
    b.exit()

    b.label("s1_entry")
    acc = b.mov(0.0)
    for k, base in enumerate(bases):
        b.mov(QueueRef(0))
        saddr = b.iadd(lane, base)
        val = b.lds(saddr, buffer=f"frame{k}")
        acc = b.fadd(acc, val, dst=acc)
    out = b.iadd(lane, 512)
    b.stg(out, acc)
    b.exit()

    program = b.finish()
    program.tb_spec = ThreadBlockSpec(
        num_stages=2,
        warps_per_stage=[[0], [1]],
        stage_registers=[16, 16],
        queues=[
            NamedQueueSpec(queue_id=0, src_stage=0, dst_stage=1, size=4)
        ],
        smem_words=64,
    )
    return program


def _sanitize(program):
    return run_kernel(
        program,
        MemoryImage(1 << 10),
        LaunchConfig(num_warps=2),
        collect_trace=False,
        sanitize=True,
    )


# -- acceptance: the deep ring is clean in both layers -------------------


def test_ring8_statically_race_free():
    report = verify_program(build_ring_program())
    assert report.clean, report.to_text()


def test_ring8_sanitizer_clean():
    result = _sanitize(build_ring_program())
    assert result.races == []


def test_ring8_hb_orders_every_cross_stage_pair():
    analysis = analyze_program(build_ring_program())
    assert not analysis.racy()
    # Every slot contributes a cross-stage STS/LDS pair and the engine
    # resolves each one (nothing falls back to unresolved).
    groups = {v.group for v in analysis.verdicts}
    assert groups == {f"ring{k}" for k in range(RING_SLOTS)}
    assert not analysis.unresolved


# -- acceptance: each corruption is flagged by both layers ---------------


def test_ring8_drop_arrive_flagged_by_both_layers():
    mutant = apply_mutation(build_ring_program(), "drop-arrive")
    assert mutant is not None
    report = verify_program(mutant)
    fired = report.rules_fired()
    assert "WASP-S001" in fired and "WASP-D002" in fired
    assert report.errors
    # Dynamically the lost arrive starves the consumer's first wait.
    with pytest.raises(DeadlockError):
        _sanitize(mutant)


def test_ring8_phase_off_by_one_flagged_by_both_layers():
    mutant = apply_mutation(build_ring_program(), "phase-off-by-one")
    assert mutant is not None
    report = verify_program(mutant)
    assert "WASP-S004" in report.rules_fired()
    assert report.errors
    # The extra empty credit lets the producer refill slot 0 while the
    # consumer's generation-0 read is still outstanding: the pipeline
    # drains (no deadlock) but the sanitizer observes the overlap.
    result = _sanitize(mutant)
    assert result.races
    assert any(r.group == "ring0" for r in result.races)


def test_queue_program_clean_in_both_layers():
    program = build_queue_program()
    report = verify_program(program)
    assert report.clean, report.to_text()
    assert _sanitize(program).races == []


def test_reorder_push_flagged_by_both_layers():
    mutant = apply_mutation(build_queue_program(), "reorder-push")
    assert mutant is not None
    report = verify_program(mutant)
    assert "WASP-S001" in report.rules_fired()
    assert report.errors
    # The hoisted push publishes frame0 before the STS lands, so the
    # consumer's LDS races with the late write.
    result = _sanitize(mutant)
    assert result.races
    race = result.races[0]
    assert race.group == "frame0"
    assert race.stage_pair == frozenset({0, 1})
