"""The static performance model: bounds, predictions, and the plumbing
that threads predictions through the runner and the sweep reports."""

from __future__ import annotations

import json

import pytest

from repro.analysis.perfmodel import (
    PREDICTION_SCHEMA,
    Prediction,
    compute_bounds,
    compute_stage_work,
    predict_kernel,
    predict_traces,
    queue_digraph,
)
from repro.analysis.perfmodel.dataflow import DataflowWalk
from repro.core.compiler import WaspCompiler, WaspCompilerOptions
from repro.core.compiler.pipeline import CompileResult, options_delta
from repro.experiments.configs import baseline_config, wasp_gpu_config
from repro.experiments.parallel import KernelTask, SweepReport, run_sweep
from repro.experiments.runner import (
    TraceCache,
    _compiler_options_for,
    _gpu_for,
    run_kernel,
)
from repro.workloads import get_benchmark

SCALE = 0.25


@pytest.fixture(scope="module")
def cache():
    return TraceCache()


@pytest.fixture(scope="module")
def spmv_kernel():
    return get_benchmark("hpcg", scale=SCALE).kernel("spmv_27pt")


@pytest.fixture(scope="module")
def spmv_specialized(spmv_kernel, cache):
    options = _compiler_options_for(spmv_kernel, wasp_gpu_config())
    entry = cache.specialized(spmv_kernel, options)
    assert entry is not None
    return entry


@pytest.fixture(scope="module")
def spmv_prediction(spmv_kernel, cache):
    return predict_kernel(spmv_kernel, wasp_gpu_config(), cache=cache)


# -- bounds --------------------------------------------------------------


def test_queue_digraph_matches_tb_spec(spmv_specialized):
    spec = spmv_specialized.compile_result.program.tb_spec
    edges = queue_digraph(spec)
    assert edges, "specialized pipeline must have at least one queue"
    declared = {(q.queue_id, q.src_stage, q.dst_stage) for q in spec.queues}
    assert set(edges) == declared
    assert queue_digraph(None) == []


def test_bounds_binding_is_max(spmv_kernel, spmv_specialized):
    gpu = _gpu_for(spmv_kernel, wasp_gpu_config())
    traces = spmv_specialized.traces
    walk = DataflowWalk(gpu, traces)
    walk.run()
    work = compute_stage_work(traces, walk.smem_queue)
    traffic = walk.channel_stats()
    report = compute_bounds(
        work,
        gpu.service_rates(),
        walk.spec,
        queue_residency={
            qid: agg.mean_residency for qid, agg in traffic.items()
        },
        queue_channels={
            qid: agg.channels for qid, agg in traffic.items()
        },
    )
    binding = report.binding()
    assert binding is not None
    assert binding.cycles == max(b.cycles for b in report.kernel)
    for stage_bounds in report.stages.values():
        candidates = [
            stage_bounds.issue,
            *stage_bounds.memory,
            *stage_bounds.queues,
        ]
        assert stage_bounds.binding().cycles == max(
            b.cycles for b in candidates
        )
    # Little's-law queue coupling produced at least one queue bound.
    assert any(sb.queues for sb in report.stages.values())


# -- predictions ---------------------------------------------------------


def test_prediction_fields_and_schema(spmv_prediction):
    pred = spmv_prediction.predicted
    assert isinstance(pred, Prediction)
    assert pred.cycles > 0
    assert pred.bottleneck_stage is not None
    assert pred.explanation, "explanation chain must not be empty"
    # The stall mix is a distribution over the profiler's taxonomy.
    assert pred.stall_mix
    assert abs(sum(pred.stall_mix.values()) - 1.0) < 1e-6
    doc = json.loads(json.dumps(pred.to_json()))
    assert doc["schema"] == PREDICTION_SCHEMA
    assert doc["cycles"] == round(pred.cycles, 2)
    assert doc["bottleneck_stage"] == pred.bottleneck_stage


def test_kernel_prediction_speedup(spmv_prediction):
    kp = spmv_prediction
    assert kp.baseline.cycles > 0
    assert kp.predicted.cycles <= kp.baseline.cycles
    assert kp.predicted_speedup == pytest.approx(
        kp.baseline.cycles / kp.predicted.cycles
    )
    doc = kp.to_json()
    assert doc["predicted_speedup"] == round(kp.predicted_speedup, 4)
    assert doc["specialized"] == kp.used_specialized


def test_predict_traces_close_to_simulator(spmv_kernel, cache):
    """Same-variant prediction tracks the simulator on this kernel."""
    config = wasp_gpu_config()
    result = run_kernel(spmv_kernel, config, cache)
    if result.used_specialized:
        options = _compiler_options_for(spmv_kernel, config)
        traces = cache.specialized(spmv_kernel, options).traces
    else:
        traces = cache.original(spmv_kernel).traces
    pred = predict_traces(
        traces, _gpu_for(spmv_kernel, config),
        kernel_name=spmv_kernel.name,
    )
    assert abs(pred.cycles - result.cycles) / result.cycles < 0.25


def test_baseline_config_prediction(spmv_kernel, cache):
    kp = predict_kernel(spmv_kernel, baseline_config(), cache=cache)
    assert not kp.used_specialized
    assert kp.predicted.cycles == kp.baseline.cycles


# -- runner / sweep plumbing ---------------------------------------------


def test_run_kernel_predict_flag(spmv_kernel, cache):
    config = wasp_gpu_config()
    plain = run_kernel(spmv_kernel, config, cache)
    assert plain.prediction is None
    assert plain.predicted_error is None
    with_pred = run_kernel(spmv_kernel, config, cache, predict=True)
    assert with_pred.prediction is not None
    assert with_pred.predicted_error is not None
    assert with_pred.predicted_error < 0.25


def test_sweep_rows_carry_prediction_error():
    config = wasp_gpu_config()
    sweep = run_sweep(["hpcg"], SCALE, [config], jobs=1, predict=True)
    report = sweep.report
    assert len(report.prediction_rows) == report.num_tasks
    for row in report.prediction_rows:
        result = sweep.kernel_result(row.benchmark, row.kernel, 0)
        assert row.simulated_cycles == result.cycles
        assert row.error < 0.25
        doc = row.to_json()
        assert doc["predicted_error"] == round(row.error, 4)


def test_sweep_without_predict_has_no_prediction_rows():
    sweep = run_sweep(["hpcg"], SCALE, [wasp_gpu_config()], jobs=1)
    assert sweep.report.prediction_rows == []


def test_sweep_report_merge_keeps_prediction_rows():
    a = run_sweep(
        ["hpcg"], SCALE, [wasp_gpu_config()], jobs=1, predict=True
    ).report
    b = SweepReport()
    b.merge(a)
    assert len(b.prediction_rows) == len(a.prediction_rows)


def test_kernel_task_defaults_to_no_prediction():
    task = KernelTask(
        benchmark="hpcg", scale=SCALE, kernel="spmv_27pt",
        config=wasp_gpu_config(), config_index=0,
    )
    assert task.predict is False


# -- compiler options plumbing -------------------------------------------


def test_options_json_round_trip():
    options = WaspCompilerOptions(queue_size=8, max_stages=2)
    back = WaspCompilerOptions.from_json(options.to_json())
    assert back == options


def test_options_from_json_rejects_unknown_keys():
    doc = WaspCompilerOptions().to_json()
    doc["not_a_knob"] = 1
    with pytest.raises(ValueError):
        WaspCompilerOptions.from_json(doc)


def test_options_delta_names_changed_fields_only():
    base = WaspCompilerOptions()
    other = WaspCompilerOptions(queue_size=8, enable_tma_offload=False)
    delta = options_delta(base, other)
    assert delta == {"queue_size": 8, "enable_tma_offload": False}
    assert options_delta(base, base) == {}


def test_on_compile_hook_observes_every_result(spmv_kernel):
    seen: list[CompileResult] = []
    compiler = WaspCompiler(
        wasp_gpu_config().compiler, on_compile=seen.append
    )
    result = compiler.compile(
        spmv_kernel.program, num_warps=spmv_kernel.launch.num_warps
    )
    assert seen == [result]


def test_on_compile_hook_exceptions_propagate(spmv_kernel):
    def boom(result: CompileResult) -> None:
        raise RuntimeError("observer broke")

    compiler = WaspCompiler(wasp_gpu_config().compiler, on_compile=boom)
    with pytest.raises(RuntimeError, match="observer broke"):
        compiler.compile(
            spmv_kernel.program, num_warps=spmv_kernel.launch.num_warps
        )
