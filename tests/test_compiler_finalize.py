"""Finalization: combined program layout, spec population, error paths."""

import pytest

from repro.core.compiler import WaspCompiler, WaspCompilerOptions
from repro.core.compiler.finalize import _collect_queues, build_spec
from repro.core.compiler.stagesplit import StageProgram
from repro.errors import CompilerError
from repro.isa import Instruction, Opcode, ProgramBuilder, QueueRef, Register
from tests.conftest import build_stream_program, build_tile_program


def _stage_program(name, instrs, stage, is_compute=False):
    b = ProgramBuilder(name)
    for instr in instrs:
        b._emit(instr)
    b.exit()
    return StageProgram(
        stage=stage, program=b.finish(), is_compute=is_compute
    )


def test_collect_queues_matches_push_pop_pairs():
    producer = _stage_program(
        "p",
        [Instruction(Opcode.LDG, dst=QueueRef(0), srcs=[Register(0)])],
        stage=0,
    )
    consumer = _stage_program(
        "c",
        [Instruction(Opcode.MOV, dst=Register(1), srcs=[QueueRef(0)])],
        stage=1, is_compute=True,
    )
    queues = _collect_queues([producer, consumer], queue_size=16)
    assert len(queues) == 1
    assert queues[0].src_stage == 0 and queues[0].dst_stage == 1
    assert queues[0].size == 16


def test_unmatched_push_rejected():
    producer = _stage_program(
        "p",
        [Instruction(Opcode.LDG, dst=QueueRef(0), srcs=[Register(0)])],
        stage=0,
    )
    lonely = _stage_program("c", [], stage=1, is_compute=True)
    with pytest.raises(CompilerError, match="never popped"):
        _collect_queues([producer, lonely], queue_size=8)


def test_unmatched_pop_rejected():
    consumer = _stage_program(
        "c",
        [Instruction(Opcode.MOV, dst=Register(1), srcs=[QueueRef(3)])],
        stage=1, is_compute=True,
    )
    other = _stage_program("p", [], stage=0)
    with pytest.raises(CompilerError, match="never pushed"):
        _collect_queues([other, consumer], queue_size=8)


def test_build_spec_warps_and_registers():
    producer = _stage_program("p", [], stage=0)
    consumer = _stage_program("c", [], stage=1, is_compute=True)
    spec = build_spec(
        [producer, consumer], num_warps=3, queue_size=32,
        stage_registers=[4, 9], smem_words=7,
    )
    assert spec.num_stages == 2
    assert spec.warps_per_stage == [[0, 1, 2], [3, 4, 5]]
    assert spec.stage_registers == [4, 9]
    assert spec.smem_words == 7


def test_combined_program_sections_in_stage_order(stream_setup=None):
    program = build_stream_program(64, 64, 256)
    result = WaspCompiler(
        WaspCompilerOptions(enable_tma_offload=False)
    ).compile(program, num_warps=2)
    labels = [blk.label for blk in result.program.blocks]
    jt = [l for l in labels if l.startswith("jump_table")]
    s0 = [l for l in labels if l.startswith("s0_")]
    s1 = [l for l in labels if l.startswith("s1_")]
    assert jt and s0 and s1
    assert labels.index(jt[0]) < labels.index(s0[0]) < labels.index(s1[0])


def test_tile_spec_barrier_counts():
    program = build_tile_program(4, 32, 64, 512, num_warps=2)
    result = WaspCompiler(
        WaspCompilerOptions(double_buffering=False)
    ).compile(program, num_warps=2)
    spec = result.program.tb_spec
    # 2 stages x 2 warps: producers arrive 'filled' (2), consumers
    # arrive 'empty' (2).
    assert spec.barrier_expected["tile0_filled"] == 2
    assert spec.barrier_expected["tile0_empty"] == 2
    assert spec.barrier_initial == {}
