"""Telemetry layer: registry, snapshots, spans, exports, dashboard.

Covers the ISSUE 7 contracts:

* histogram bucketing and merge associativity (property tests),
* snapshot delta/merge algebra used by the pool workers,
* the ``repro-metrics-v1`` document validator and Prometheus
  round-trip,
* jobs-invariance of aggregated sweep telemetry (serial vs
  ``--jobs 2`` identical invariant counters),
* span export into the Chrome trace writer,
* the ``repro bench report`` trajectory dashboard,
* the per-core perf fields on ``CoreDiff`` / ``SweepReport``.
"""

from __future__ import annotations

import json
from bisect import bisect_left

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry.registry import (
    TELEMETRY,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    exponential_buckets,
)
from repro.telemetry.snapshot import (
    METRICS_SCHEMA,
    build_metrics_document,
    missing_families,
    parse_prometheus,
    render_prometheus,
    validate_metrics_document,
)
from repro.telemetry.spans import SpanRecorder
from repro.telemetry.trajectory import (
    build_bench_report,
    render_bench_report,
)

BOUNDS = exponential_buckets(0.001, 4.0, 8)


@pytest.fixture
def clean_telemetry():
    """Enable a reset global registry; restore prior state after."""
    was_enabled = TELEMETRY.enabled
    TELEMETRY.reset()
    TELEMETRY.enable()
    yield TELEMETRY
    TELEMETRY.reset()
    if not was_enabled:
        TELEMETRY.disable()


# -- buckets and histograms -------------------------------------------------


def test_exponential_buckets_shape():
    bounds = exponential_buckets(1e-4, 4.0, 12)
    assert len(bounds) == 12
    assert bounds[0] == pytest.approx(1e-4)
    assert all(b2 / b1 == pytest.approx(4.0)
               for b1, b2 in zip(bounds, bounds[1:]))


def test_exponential_buckets_rejects_bad_args():
    for start, factor, count in [(0, 2, 4), (-1, 2, 4), (1, 1, 4),
                                 (1, 0.5, 4), (1, 2, 0)]:
        with pytest.raises(ValueError):
            exponential_buckets(start, factor, count)


def test_histogram_rejects_unsorted_bounds():
    with pytest.raises(ValueError):
        Histogram("repro_x", (), bounds=(2.0, 1.0))
    with pytest.raises(ValueError):
        Histogram("repro_x", (), bounds=(1.0, 1.0, 2.0))


@settings(max_examples=80, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                          allow_nan=False), max_size=50))
def test_histogram_bucketing_property(values):
    hist = Histogram("repro_test_seconds", (), bounds=BOUNDS)
    for v in values:
        hist.observe(v)
    assert hist.count == len(values)
    assert sum(hist.counts) == hist.count
    assert hist.sum == pytest.approx(sum(values))
    # Every value lands in the first bucket whose bound >= value
    # ("le" semantics); the overflow bucket catches the rest.
    expected = [0] * (len(BOUNDS) + 1)
    for v in values:
        expected[bisect_left(BOUNDS, v)] += 1
    assert hist.counts == expected
    for i, v in enumerate(BOUNDS):
        single = Histogram("repro_one", (), bounds=BOUNDS)
        single.observe(v)
        assert single.counts[i] == 1  # boundary value is <= its bound


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.floats(0, 1e4, allow_nan=False), max_size=20),
    st.lists(st.floats(0, 1e4, allow_nan=False), max_size=20),
    st.lists(st.floats(0, 1e4, allow_nan=False), max_size=20),
)
def test_histogram_merge_associative_commutative(xs, ys, zs):
    def build(values):
        h = Histogram("repro_m", (), bounds=BOUNDS)
        for v in values:
            h.observe(v)
        return h

    # (x + y) + z == x + (y + z) == (y + x) + z, element-wise.
    left = build(xs)
    left.merge(build(ys))
    left.merge(build(zs))
    inner = build(ys)
    inner.merge(build(zs))
    right = build(xs)
    right.merge(inner)
    swapped = build(ys)
    swapped.merge(build(xs))
    swapped.merge(build(zs))
    for other in (right, swapped):
        assert left.counts == other.counts
        assert left.count == other.count
        assert left.sum == pytest.approx(other.sum)


def test_histogram_merge_rejects_different_bounds():
    a = Histogram("repro_h", (), bounds=(1.0, 2.0))
    b = Histogram("repro_h", (), bounds=(1.0, 4.0))
    with pytest.raises(ValueError):
        a.merge(b)


def test_observe_many_matches_repeated_observe():
    a = Histogram("repro_h", (), bounds=BOUNDS)
    b = Histogram("repro_h", (), bounds=BOUNDS)
    a.observe_many(0.5, 7)
    a.observe_many(0.5, 0)  # no-op
    for _ in range(7):
        b.observe(0.5)
    assert a.counts == b.counts and a.sum == b.sum


# -- registry and snapshots -------------------------------------------------


def test_registry_get_or_create_and_kind_conflict():
    reg = MetricsRegistry(enabled=True)
    c = reg.counter("repro_x_total", {"k": "v"})
    assert reg.counter("repro_x_total", {"k": "v"}) is c
    assert reg.counter("repro_x_total", {"k": "w"}) is not c
    with pytest.raises(ValueError):
        reg.gauge("repro_x_total", {"k": "v"})


def test_gauge_set_max():
    reg = MetricsRegistry(enabled=True)
    g = reg.gauge("repro_g")
    g.set(2.0)
    g.set_max(1.0)
    assert g.value == 2.0
    g.set_max(3.0)
    assert g.value == 3.0
    assert not g.invariant  # gauges never join the invariance contract


def test_snapshot_since_and_merge_roundtrip():
    reg = MetricsRegistry(enabled=True)
    reg.counter("repro_a_total").inc(3)
    reg.histogram("repro_h_seconds", bounds=BOUNDS).observe(0.01)
    before = reg.snapshot()
    reg.counter("repro_a_total").inc(4)
    reg.counter("repro_b_total", {"phase": "x"}).inc(1)
    reg.histogram("repro_h_seconds", bounds=BOUNDS).observe(0.02)
    after = reg.snapshot()

    delta = after.since(before)
    key = ("repro_a_total", ())
    assert delta.entries[key]["value"] == 4.0

    # before + delta == after for counters and histograms.
    rebuilt = MetricsSnapshot()
    rebuilt.merge(before)
    rebuilt.merge(delta)
    for k, entry in after.entries.items():
        got = rebuilt.entries[k]
        if entry["kind"] == "histogram":
            assert got["counts"] == entry["counts"]
            assert got["count"] == entry["count"]
        else:
            assert got["value"] == entry["value"]


@settings(max_examples=40, deadline=None)
@given(st.lists(
    st.tuples(st.sampled_from(["a", "b", "c"]),
              st.integers(0, 100)),
    max_size=12,
))
def test_snapshot_merge_order_independent(incs):
    """Merging per-task deltas yields the same totals in any order —
    the property that makes --jobs N aggregation deterministic."""
    def snap_of(name, amount):
        reg = MetricsRegistry(enabled=True)
        reg.counter(f"repro_{name}_total").inc(amount)
        return reg.snapshot()

    deltas = [snap_of(n, a) for n, a in incs]
    forward = MetricsSnapshot()
    for d in deltas:
        forward.merge(d)
    backward = MetricsSnapshot()
    for d in reversed(deltas):
        backward.merge(d)
    assert (forward.invariant_counters()
            == backward.invariant_counters())


def test_invariant_counters_excludes_non_invariant():
    reg = MetricsRegistry(enabled=True)
    reg.counter("repro_keep_total", invariant=True).inc(1)
    reg.counter("repro_drop_total", invariant=False).inc(1)
    reg.gauge("repro_g").set(5)
    flat = reg.snapshot().invariant_counters()
    assert "repro_keep_total" in flat
    assert "repro_drop_total" not in flat
    assert not any(k.startswith("repro_g") for k in flat)


def test_registry_disabled_by_default_in_tests():
    # The suite must not run with REPRO_TELEMETRY globally on, or the
    # overhead guarantees aren't what we're exercising.
    assert not TELEMETRY.enabled


# -- spans ------------------------------------------------------------------


def test_span_recorder_bounded_and_grouped():
    rec = SpanRecorder(maxlen=3)
    for i in range(5):
        with rec.span("compiler", f"pass{i}"):
            pass
    spans = rec.spans()
    assert len(spans) == 3
    assert rec.dropped == 2
    assert [s.name for s in spans] == ["pass2", "pass3", "pass4"]
    assert set(rec.by_subsystem()) == {"compiler"}
    assert all(s.duration_s >= 0 for s in spans)
    rec.clear()
    assert rec.spans() == [] and rec.dropped == 0


def test_span_records_pass_histogram(clean_telemetry):
    rec = SpanRecorder()
    with rec.span("verifier", "verify"):
        pass
    hist = clean_telemetry.histogram(
        "repro_pass_seconds",
        {"subsystem": "verifier", "pass": "verify"},
    )
    assert hist.count == 1
    assert not hist.invariant  # wall time is machine-dependent


def test_chrome_trace_with_spans_validates():
    from repro.profiling.chrometrace import (
        build_chrome_trace,
        validate_chrome_trace,
    )

    rec = SpanRecorder()
    with rec.span("compiler", "build_pdg"):
        pass
    with rec.span("sim", "replay"):
        pass
    trace = build_chrome_trace([], spans=rec)
    assert validate_chrome_trace(trace) == []
    names = {e["name"] for e in trace["traceEvents"]}
    assert {"build_pdg", "replay", "process_name"} <= names
    rows = {
        e["args"]["name"] for e in trace["traceEvents"]
        if e["name"] == "process_name"
    }
    assert rows == {"toolchain: compiler", "toolchain: sim"}


# -- metrics document + Prometheus export -----------------------------------


def _sample_document():
    reg = MetricsRegistry(enabled=True)
    reg.counter("repro_eventcore_events_total",
                {"kind": "mem"}, help="events").inc(7)
    reg.counter("repro_cache_l1_hits_total").inc(3)
    reg.counter("repro_pool_tasks_total", {"phase": "simulate"}).inc(2)
    reg.gauge("repro_pool_jobs").set(2)
    reg.histogram("repro_pass_seconds",
                  {"subsystem": "compiler", "pass": "compile"},
                  bounds=BOUNDS, invariant=False).observe(0.01)
    rec = SpanRecorder()
    with rec.span("compiler", "compile"):
        pass
    return build_metrics_document(
        reg.snapshot(), command="test", spans=rec
    )


def test_metrics_document_valid_and_complete():
    doc = _sample_document()
    assert doc["schema"] == METRICS_SCHEMA
    assert validate_metrics_document(doc) == []
    assert missing_families(doc) == []
    assert doc["spans"]["count"] == 1
    assert doc["spans"]["subsystems"] == ["compiler"]


def test_metrics_document_reports_missing_families():
    doc = _sample_document()
    doc["metrics"] = [
        e for e in doc["metrics"]
        if not e["name"].startswith("repro_pool_")
    ]
    assert missing_families(doc) == ["repro_pool_"]


def test_validate_rejects_malformed_documents():
    assert validate_metrics_document([]) != []
    assert validate_metrics_document({"schema": "nope"}) != []

    doc = _sample_document()
    doc["metrics"][0]["name"] = "BadName"
    assert any("bad name" in p
               for p in validate_metrics_document(doc))

    doc = _sample_document()
    doc["metrics"].append(dict(doc["metrics"][0]))
    assert any("duplicate" in p
               for p in validate_metrics_document(doc))

    doc = _sample_document()
    hist = next(e for e in doc["metrics"]
                if e["kind"] == "histogram")
    hist["count"] += 1
    assert any("sum of bucket counts" in p
               for p in validate_metrics_document(doc))

    doc = _sample_document()
    del doc["metrics"][0]["invariant"]
    assert any("invariant" in p
               for p in validate_metrics_document(doc))


def test_prometheus_render_parse_roundtrip():
    doc = _sample_document()
    text = render_prometheus(doc)
    families = parse_prometheus(text)
    assert set(families) == {e["name"] for e in doc["metrics"]}
    assert families["repro_pool_jobs"]["kind"] == "gauge"
    # histogram: one _bucket line per bound + overflow, plus _sum
    # and _count.
    assert (families["repro_pass_seconds"]["samples"]
            == len(BOUNDS) + 1 + 2)
    # cumulative bucket counts: the +Inf bucket equals _count.
    inf_line = next(
        ln for ln in text.splitlines()
        if ln.startswith("repro_pass_seconds_bucket")
        and 'le="+Inf"' in ln
    )
    assert inf_line.rsplit(" ", 1)[1] == "1"


def test_prometheus_parser_rejects_malformed():
    with pytest.raises(ValueError):
        parse_prometheus("repro_x_total 1\n")  # sample before TYPE
    with pytest.raises(ValueError):
        parse_prometheus("# TYPE repro_x wat\nrepro_x 1\n")
    with pytest.raises(ValueError):
        parse_prometheus("# TYPE repro_x counter\nrepro_x one\n")


# -- jobs-invariance of sweep telemetry -------------------------------------


@pytest.fixture
def isolated_cache(tmp_path):
    from repro.experiments import runner
    from repro.experiments.runner import CacheStats
    from repro.fexec.trace_store import TraceStore

    saved = runner.GLOBAL_CACHE.__dict__.copy()
    runner.GLOBAL_CACHE._entries = {}
    runner.GLOBAL_CACHE.stats = CacheStats()
    runner.GLOBAL_CACHE.store = TraceStore(tmp_path / "cache")
    yield runner.GLOBAL_CACHE
    runner.GLOBAL_CACHE.__dict__.update(saved)


def test_sweep_telemetry_jobs_invariant(clean_telemetry,
                                        isolated_cache):
    """Serial and --jobs 2 sweeps aggregate to identical invariant
    counters (the ISSUE 7 satellite contract); wall-clock series are
    excluded by their invariant=False flag."""
    from repro.experiments.configs import (
        baseline_config,
        wasp_gpu_config,
    )
    from repro.experiments.parallel import last_report, run_sweep

    configs = [baseline_config(), wasp_gpu_config()]
    run_sweep(["pointnet"], 0.1, configs, jobs=1)
    serial_report = last_report()
    serial = clean_telemetry.snapshot().invariant_counters()
    assert serial, "sweep harvested no invariant telemetry"
    assert any(k.startswith("repro_eventcore_") for k in serial)
    assert serial.get(
        "repro_pool_tasks_total{phase=simulate}"
    ) == len(configs)

    clean_telemetry.reset()
    run_sweep(["pointnet"], 0.1, configs, jobs=2)
    parallel_report = last_report()
    parallel = clean_telemetry.snapshot().invariant_counters()
    assert parallel == serial

    # Satellite 2: the structured pool/cache stats on SweepReport.
    for report, jobs in ((serial_report, 1), (parallel_report, 2)):
        doc = report.to_json()
        assert doc["jobs"] == jobs
        assert doc["num_tasks"] == len(configs)
        assert 0.0 <= doc["utilization"] <= 1.0
        assert set(doc["cache"]) >= {
            "memory_hits", "disk_hits", "generations", "lookups",
        }
        assert doc["cache"]["lookups"] > 0


# -- corediff perf fields ---------------------------------------------------


def test_corediff_speedup_and_json():
    from repro.sim.differential import CoreDiff

    diff = CoreDiff(label="k/cfg", ref_wall_s=0.4, event_wall_s=0.1,
                    ref_issued=100, event_issued=100,
                    event_events=42)
    assert diff.ok
    assert diff.speedup == pytest.approx(4.0)
    doc = diff.to_json()
    assert doc["speedup"] == pytest.approx(4.0)
    assert doc["event_events"] == 42
    assert doc["ok"] is True
    # Failed-before-run diffs must not divide by zero.
    assert CoreDiff(label="x").speedup == 0.0


def test_diff_traces_populates_perf_fields(isolated_cache):
    from repro.sim.config import baseline_a100
    from repro.sim.differential import diff_traces
    from repro.workloads.registry import get_benchmark

    bench = get_benchmark("pointnet", scale=0.1)
    kernel = bench.kernels[0]
    traces = isolated_cache.original(kernel).traces
    diff = diff_traces(traces, baseline_a100(), "pointnet/BASELINE")
    assert diff.ok, diff.mismatches
    assert diff.ref_wall_s > 0 and diff.event_wall_s > 0
    assert diff.ref_issued == diff.event_issued > 0
    assert diff.event_events > 0


# -- perf-trajectory dashboard ----------------------------------------------


def _bench_doc(normals: dict[str, float]) -> dict:
    return {
        "schema": 1,
        "benchmarks": {
            name: {"wall_s": n / 10.0, "normalized": n}
            for name, n in normals.items()
        },
    }


def test_bench_report_trajectory_and_regression(tmp_path):
    core = _bench_doc({"a/ev": 10.0, "b/ev": 5.0})
    other = _bench_doc({"a/ev": 11.0})
    (tmp_path / "BENCH_core.json").write_text(json.dumps(core))
    (tmp_path / "BENCH_other.json").write_text(json.dumps(other))

    current = _bench_doc({"a/ev": 13.0, "b/ev": 4.9, "c/ev": 1.0})
    report = build_bench_report(
        directory=str(tmp_path), current=current, tolerance=0.2
    )
    assert report["schema"] == "repro-bench-report-v1"
    by_name = {r["benchmark"]: r for r in report["rows"]}
    assert by_name["a/ev"]["status"] == "REGRESSED"  # +30% > 20%
    assert by_name["a/ev"]["delta"] == pytest.approx(0.3)
    assert by_name["b/ev"]["status"] == "ok"
    assert by_name["c/ev"]["status"] == "new"
    assert by_name["a/ev"]["columns"]["BENCH_other"] == 11.0
    assert report["summary"]["regressions"] == ["a/ev"]
    assert report["summary"]["geomean_ratio"] > 1.0

    text = render_bench_report(report)
    assert "Perf trajectory" in text
    assert "REGRESSED: a/ev" in text


def test_bench_report_committed_only(tmp_path):
    core = _bench_doc({"a/ev": 10.0})
    (tmp_path / "BENCH_core.json").write_text(json.dumps(core))
    report = build_bench_report(directory=str(tmp_path))
    assert report["summary"]["regressions"] == []
    assert all("status" not in r for r in report["rows"])
    text = render_bench_report(report)
    assert "a/ev" in text and "status" not in text


def test_bench_report_empty_dir(tmp_path):
    report = build_bench_report(directory=str(tmp_path))
    assert report["rows"] == []


# -- telemetry overhead gate ------------------------------------------------


def test_check_telemetry_overhead_gate():
    from benchmarks.perf.harness import check_telemetry_overhead

    base = {"schema": 1, "benchmarks": {
        "a": {"normalized": 10.0}, "b": {"normalized": 20.0},
    }}
    ok = {"schema": 1, "benchmarks": {
        "a": {"normalized": 10.1}, "b": {"normalized": 20.2},
    }}
    assert check_telemetry_overhead(ok, base, 0.02) == []
    slow = {"schema": 1, "benchmarks": {
        "a": {"normalized": 10.5}, "b": {"normalized": 21.0},
    }}
    problems = check_telemetry_overhead(slow, base, 0.02)
    assert len(problems) == 1 and "telemetry" in problems[0]
    # schema change and disjoint suites are not this gate's problem
    assert check_telemetry_overhead(
        {"schema": 2, "benchmarks": {}}, base, 0.02) == []
    assert check_telemetry_overhead(
        {"schema": 1, "benchmarks": {"z": {"normalized": 1}}},
        base, 0.02) == []


# -- CLI surfaces -----------------------------------------------------------


def test_cli_bench_report(tmp_path, capsys):
    from repro.cli import run_bench_report

    (tmp_path / "BENCH_core.json").write_text(
        json.dumps(_bench_doc({"a/ev": 10.0}))
    )
    out_path = tmp_path / "report.json"
    rc = run_bench_report([
        "--dir", str(tmp_path), "--json-out", str(out_path),
    ])
    assert rc == 0
    assert "Perf trajectory" in capsys.readouterr().out
    doc = json.loads(out_path.read_text())
    assert doc["schema"] == "repro-bench-report-v1"
    assert run_bench_report(["--dir", str(tmp_path / "empty")]) == 1


def test_cli_metrics_snapshot(tmp_path, capsys, clean_telemetry,
                              isolated_cache):
    from repro.cli import run_metrics
    from repro.telemetry.snapshot import main as validate_main

    json_path = tmp_path / "metrics.json"
    prom_path = tmp_path / "metrics.prom"
    rc = run_metrics([
        "--benchmarks", "pointnet", "--scale", "0.1",
        "--json-out", str(json_path), "--prom-out", str(prom_path),
        "--cache-dir", str(tmp_path / "cache"),
    ])
    out = capsys.readouterr().out
    assert rc == 0, out
    assert "metrics:" in out

    doc = json.loads(json_path.read_text())
    assert validate_metrics_document(doc) == []
    assert missing_families(doc) == []
    families = parse_prometheus(prom_path.read_text())
    assert any(n.startswith("repro_eventcore_") for n in families)

    # The CI smoke job's validator accepts the pair it just wrote.
    assert validate_main([str(json_path), str(prom_path)]) == 0
    assert "valid repro-metrics-v1" in capsys.readouterr().out
