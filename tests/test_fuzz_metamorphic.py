"""Metamorphic timing invariants and per-bucket stall coverage.

Satellite requirement: the PR 2 stall-attribution invariant
(``sum(stalls) + issued == active warp-cycles``) holds as a standing
assertion under *generated* workloads, with a dedicated unit test per
stall bucket — each :class:`StallCause` has a deterministic generated
scenario that provably charges it.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.compiler import WaspCompiler, WaspCompilerOptions
from repro.fexec.machine import run_kernel
from repro.fuzz.generator import build_kernel
from repro.fuzz.metamorphic import (
    assert_stall_accounting,
    check_timing_invariants,
)
from repro.fuzz.spec import generate_spec
from repro.profiling.stalls import StallCause
from repro.sim.config import wasp_gpu
from repro.sim.gpu import simulate_kernel
from repro.sim.sm import SMSimulator

#: Seeds with known skeletons (pinned by the generator determinism
#: tests): 2 = streaming, 7 = tiled.
STREAMING_SEED = 2
TILED_SEED = 7


def _baseline_traces(seed):
    kernel = build_kernel(generate_spec(seed))
    result = run_kernel(kernel.program, kernel.image_factory(),
                        kernel.launch)
    return kernel, result.traces


def _specialized_traces(seed, queue_size=32):
    kernel = build_kernel(generate_spec(seed))
    options = WaspCompilerOptions(
        queue_size=queue_size, enable_tma_offload=False
    )
    result = WaspCompiler(options).compile(
        kernel.program, num_warps=kernel.launch.num_warps
    )
    assert result.specialized
    launch = replace(
        kernel.launch,
        num_warps=kernel.launch.num_warps * result.num_stages,
    )
    run = run_kernel(result.program, kernel.image_factory(), launch)
    return kernel, run.traces


def _stalls(traces, gpu, occupancy=None):
    sim = simulate_kernel(traces, gpu, occupancy=occupancy)
    assert_stall_accounting(sim)  # the standing invariant, every sim
    return sim.stall_by_cause()


class TestEachStallBucketHasAGeneratedTrigger:
    def test_scoreboard(self):
        _kernel, traces = _baseline_traces(STREAMING_SEED)
        assert _stalls(traces, wasp_gpu())[StallCause.SCOREBOARD] > 0

    def test_issue_port(self):
        _kernel, traces = _baseline_traces(STREAMING_SEED)
        gpu = replace(wasp_gpu(), processing_blocks=1)
        assert _stalls(traces, gpu)[StallCause.ISSUE_PORT] > 0

    def test_mshr(self):
        _kernel, traces = _baseline_traces(STREAMING_SEED)
        gpu = replace(wasp_gpu(), max_outstanding_loads_per_warp=1)
        assert _stalls(traces, gpu)[StallCause.MSHR] > 0

    def test_barrier_wait(self):
        _kernel, traces = _baseline_traces(TILED_SEED)
        assert _stalls(traces, wasp_gpu())[StallCause.BARRIER_WAIT] > 0

    def test_queue_empty(self):
        _kernel, traces = _specialized_traces(STREAMING_SEED)
        assert _stalls(traces, wasp_gpu())[StallCause.QUEUE_EMPTY] > 0

    def test_queue_full(self):
        _kernel, traces = _specialized_traces(STREAMING_SEED,
                                              queue_size=1)
        gpu = wasp_gpu(rfq_size=1)
        assert _stalls(traces, gpu)[StallCause.QUEUE_FULL] > 0

    def test_no_eligible(self):
        """Warps whose thread block is queued behind an occupancy limit
        idle with no attributable hardware cause."""
        _kernel, traces = _baseline_traces(STREAMING_SEED)
        gpu = wasp_gpu()
        occupancy = replace(
            SMSimulator(gpu, traces).occupancy, max_resident_tbs=1
        )
        stalls = _stalls(traces, gpu, occupancy=occupancy)
        assert stalls[StallCause.NO_ELIGIBLE] > 0


def test_assert_stall_accounting_rejects_corruption():
    _kernel, traces = _baseline_traces(STREAMING_SEED)
    sim = simulate_kernel(traces, wasp_gpu())
    broken = replace(sim, active_warp_cycles=sim.active_warp_cycles + 10)
    with pytest.raises(AssertionError, match="stall accounting"):
        assert_stall_accounting(broken)


@pytest.mark.parametrize("seed", [2, 7, 13, 21])
def test_timing_invariants_hold_on_generated_kernels(seed):
    spec = generate_spec(seed)
    kernel = build_kernel(spec)
    result = run_kernel(kernel.program, kernel.image_factory(),
                        kernel.launch)
    failures = check_timing_invariants(spec, kernel, result.traces)
    assert not failures, [f.summary() for f in failures]


def test_violations_are_reported_not_raised(monkeypatch):
    """A broken stall invariant comes back as a FuzzFailure (so the
    fuzz runner can shrink and persist it), never as an exception."""
    import repro.fuzz.metamorphic as meta

    def explode(sim, context=""):
        raise AssertionError("stall accounting broken (sabotaged)")

    monkeypatch.setattr(meta, "assert_stall_accounting", explode)
    spec = generate_spec(2)
    kernel = build_kernel(spec)
    result = run_kernel(kernel.program, kernel.image_factory(),
                        kernel.launch)
    failures = meta.check_timing_invariants(spec, kernel, result.traces)
    assert [f.check for f in failures] == ["timing-stall-accounting"]
