"""Whole-suite integration: every benchmark's kernels compile and the
specialized pipelines are functionally equivalent to the originals."""

from dataclasses import replace

import numpy as np
import pytest

from repro.core.compiler import WaspCompiler, WaspCompilerOptions
from repro.fexec import run_kernel
from repro.workloads import all_benchmarks, get_benchmark

SCALE = 0.25
_OPTIONS = [
    WaspCompilerOptions(),                          # full WASP
    WaspCompilerOptions(enable_tma_offload=False),  # software queues
    WaspCompilerOptions(enable_streaming=False,
                        enable_tma_offload=False),  # tile only
]


def _output_arrays(image):
    return [
        name for name in image.array_names()
        if name in ("out", "y", "c", "cdense", "c_out", "counts")
    ]


@pytest.mark.parametrize("name", all_benchmarks())
def test_benchmark_kernels_equivalent_under_specialization(name):
    benchmark = get_benchmark(name, SCALE)
    for kernel in benchmark.kernels:
        reference = kernel.image_factory()
        run_kernel(kernel.program, reference, kernel.launch)
        outputs = _output_arrays(reference)
        assert outputs, f"{name}/{kernel.name} has no output array"
        for options in _OPTIONS:
            compiled = WaspCompiler(options).compile(
                kernel.program, num_warps=kernel.launch.num_warps
            )
            if not compiled.specialized:
                continue
            img = kernel.image_factory()
            launch = replace(
                kernel.launch,
                num_warps=kernel.launch.num_warps * compiled.num_stages,
            )
            run_kernel(compiled.program, img, launch)
            for array in outputs:
                assert np.allclose(
                    reference.read_array(array), img.read_array(array)
                ), f"{name}/{kernel.name}: {array} diverged ({options})"


@pytest.mark.parametrize("name", all_benchmarks())
def test_benchmark_kernels_specialize_where_expected(name):
    """Every benchmark must expose at least one specializable kernel —
    Table II's premise is that all twenty benefit from warp
    specialization."""
    benchmark = get_benchmark(name, SCALE)
    compiler = WaspCompiler()
    specialized = 0
    for kernel in benchmark.kernels:
        result = compiler.compile(
            kernel.program, num_warps=kernel.launch.num_warps
        )
        if result.specialized:
            specialized += 1
            assert result.num_stages >= 2
            spec = result.program.tb_spec
            assert spec.num_stages == result.num_stages
    assert specialized >= 1
