"""Evaluation harness: configs, runner semantics, experiment modules.

Experiment-module tests run on small benchmark subsets at reduced scale
so the whole file stays fast; the benches exercise the full sweeps.
"""

import pytest

from repro.experiments.configs import (
    baseline_config,
    compiler_all_config,
    compiler_tile_config,
    gto_wasp_hw_config,
    progressive_feature_configs,
    scheduling_policy_configs,
    standard_configs,
    wasp_gpu_config,
)
from repro.experiments.runner import TraceCache, run_benchmark, run_kernel
from repro.experiments.reporting import format_table, geomean
from repro.sim.config import QueueImpl
from repro.workloads import get_benchmark

SCALE = 0.25
FAST = ["pointnet", "lonestar_bfs"]


@pytest.fixture(scope="module")
def cache():
    return TraceCache()


def test_standard_configs_cover_figure14():
    names = [c.name for c in standard_configs()]
    assert names == [
        "BASELINE", "WASP_COMPILER_TILE", "WASP_COMPILER_ALL", "WASP_GPU",
    ]


def test_baseline_has_no_compiler_but_cutlass_gemm():
    cfg = baseline_config()
    assert cfg.compiler is None
    assert cfg.cutlass_gemm


def test_compiler_tile_disables_streaming():
    cfg = compiler_tile_config()
    assert cfg.compiler.enable_streaming is False
    assert cfg.compiler.enable_tile is True


def test_compiler_all_uses_smem_queues_on_baseline_gpu():
    cfg = compiler_all_config()
    assert cfg.gpu.features.queue_impl is QueueImpl.SMEM
    assert cfg.compiler.enable_tma_offload is False


def test_wasp_gpu_full_features():
    cfg = wasp_gpu_config()
    features = cfg.gpu.features
    assert features.queue_impl is QueueImpl.RFQ
    assert features.wasp_tma and features.pipeline_scheduling
    assert cfg.compiler.enable_tma_offload


def test_progressive_configs_accumulate_features():
    configs = progressive_feature_configs()
    assert [c.name for c in configs] == [
        "COMPILER_SW", "+REGALLOC", "+WASP_TMA", "+RFQ", "+SCHEDULING",
    ]
    assert configs[1].gpu.features.per_stage_registers
    assert not configs[1].gpu.features.wasp_tma
    assert configs[3].gpu.features.queue_impl is QueueImpl.RFQ
    assert configs[4].gpu.features.pipeline_scheduling


def test_scheduling_configs_fix_hardware_vary_policy():
    policies = scheduling_policy_configs()
    assert len(policies) == 4
    assert gto_wasp_hw_config().gpu.features.pipeline_scheduling is False


def test_runner_opt_in_never_slower_than_baseline(cache):
    benchmark = get_benchmark("pointnet", SCALE)
    base = run_benchmark(benchmark, baseline_config(), cache)
    for cfg in standard_configs()[1:]:
        result = run_benchmark(benchmark, cfg, cache)
        assert result.total_cycles <= base.total_cycles * 1.0001


def test_runner_reports_specialization_metadata(cache):
    benchmark = get_benchmark("pointnet", SCALE)
    result = run_kernel(
        benchmark.kernels[0], wasp_gpu_config(), cache
    )
    assert result.used_specialized
    assert result.compile_result is not None
    assert result.compile_result.num_stages >= 2
    assert result.fallback_sim is not None


def test_trace_cache_reuses_functional_runs(cache):
    benchmark = get_benchmark("pointnet", SCALE)
    kernel = benchmark.kernels[0]
    entry1 = cache.original(kernel)
    entry2 = cache.original(kernel)
    assert entry1 is entry2


def test_weighted_total(cache):
    benchmark = get_benchmark("bert", SCALE)
    result = run_benchmark(benchmark, baseline_config(), cache)
    manual = sum(k.kernel.weight * k.cycles for k in result.kernels)
    assert result.total_cycles == manual
    gemm = benchmark.kernel("qkv_gemm")
    assert gemm.weight == 2.0


# -- reporting helpers ------------------------------------------------------


def test_geomean():
    assert geomean([2.0, 8.0]) == pytest.approx(4.0)
    assert geomean([]) == 0.0
    assert geomean([1.0, 0.0, 4.0]) == pytest.approx(2.0)  # zeros skipped


def test_format_table_alignment():
    text = format_table(["A", "Blong"], [["x", 1.5], ["yy", 2]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "Blong" in lines[1]
    assert "1.50" in text


# -- experiment modules (small subsets) --------------------------------------


def test_fig14_module_shape():
    from repro.experiments import fig14

    result = fig14.run(scale=SCALE, benchmarks=FAST)
    assert len(result.rows) == 2
    for _, values in result.rows:
        assert values[0] == pytest.approx(1.0)   # BASELINE vs itself
        assert values[-1] >= values[1] * 0.95    # WASP_GPU competitive
    assert result.speedup("pointnet", "WASP_GPU") > 1.0
    assert "GEOMEAN" in result.to_text()


def test_table2_module(cache):
    from repro.experiments import table2

    result = table2.run(scale=SCALE, benchmarks=["pointnet"])
    row = result.rows[0]
    assert row.max_speedup >= row.median_speedup
    assert row.num_kernels == 1
    assert "Table II" in result.to_text()


def test_fig16_module():
    from repro.experiments import fig16

    result = fig16.run(scale=SCALE, benchmarks=FAST)
    for row in result.rows:
        assert row.per_stage_ratio <= row.uniform_ratio + 1e-9
        assert row.uniform_ratio >= 1.0
    assert 0.0 <= result.mean_savings() <= 1.0


def test_fig18_module_runs_sizes():
    from repro.experiments import fig18

    result = fig18.run(scale=SCALE, benchmarks=["pointnet"], sizes=(8, 32))
    assert result.sizes == [8, 32]
    assert result.best_size() in (8, 32)


def test_fig19_module_tma_reduces_instructions():
    from repro.experiments import fig19

    result = fig19.run(scale=SCALE, benchmarks=["lonestar_bfs"])
    variants = result.variants_of("lonestar_bfs")
    assert set(variants) == {"B", "W", "T"}
    assert variants["B"].normalized_total == pytest.approx(1.0)
    assert variants["T"].total <= variants["W"].total


def test_fig20_module_bandwidth_monotone():
    from repro.experiments import fig20

    result = fig20.run(scale=SCALE, benchmarks=["pointnet"])
    assert result.value("pointnet", "A100 1x") == pytest.approx(1.0)
    assert result.value("pointnet", "A100 0.5x") <= 1.0
    assert result.value("pointnet", "A100 2x") >= 1.0
    assert (
        result.value("pointnet", "WASP 1x")
        >= result.value("pointnet", "A100 1x")
    )


def test_fig21_module_utilization_bounds():
    from repro.experiments import fig21

    result = fig21.run(scale=SCALE, benchmarks=["pointnet"])
    row = result.rows[0]
    for value in (row.baseline_l2, row.wasp_l2, row.baseline_dram,
                  row.wasp_dram):
        assert 0.0 <= value <= 1.0


def test_fig3_module_overlap_improves():
    from repro.experiments import fig3

    result = fig3.run(scale=SCALE)
    base = result.by_config("BASELINE")
    wasp = result.by_config("WASP_GPU")
    assert wasp.overlap_score() >= base.overlap_score()
    assert "timeline" in result.to_text()


def test_fig15_and_fig17_modules():
    from repro.experiments import fig15, fig17

    r15 = fig15.run(scale=SCALE, benchmarks=["pointnet"])
    assert len(r15.config_names) == 4
    assert all(v > 0 for _, values in r15.rows for v in values)
    r17 = fig17.run(scale=SCALE, benchmarks=["pointnet"])
    assert r17.best_policy() in r17.policy_names


def test_table4_module():
    from repro.experiments import table4

    result = table4.run()
    assert result.rows[-1][0] == "Total"
    assert "Table IV" in result.to_text()
