"""Static pipeline verifier: mutation tests and clean-registry gates.

Each mutation takes a correct compiled pipeline, injects one specific
protocol violation, and asserts the verifier reports the matching rule
id — proving every pass actually catches the class of bug it claims to.
"""

from __future__ import annotations

import pytest

from tests.conftest import build_stream_program, build_tile_program

from repro.analysis import Severity, verify_program
from repro.analysis.cfg import build_view, section_loops, stage_of_label
from repro.analysis.lint import lint_benchmarks, lint_kernel
from repro.analysis.sites import collect_sites
from repro.analysis.verifier import verify_or_raise
from repro.core.compiler.pipeline import WaspCompiler, WaspCompilerOptions
from repro.errors import (
    CompilerError,
    ValidationError,
    VerificationError,
)
from repro.isa import ProgramBuilder
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.operands import Immediate, QueueRef, Register


def _compile(program, num_warps=2, **overrides):
    options = WaspCompilerOptions(
        verify=False, enable_tma_offload=False, **overrides
    )
    result = WaspCompiler(options).compile(program, num_warps=num_warps)
    assert result.specialized
    return result.program


@pytest.fixture
def stream_pipeline():
    """Two-stage LDG->Q0->compute pipeline (no TMA: explicit queue ops)."""
    return _compile(build_stream_program(128, 0, 512))


@pytest.fixture
def tile_pipeline():
    """Two-stage double-buffered LDGSTS/LDS pipeline with barriers."""
    return _compile(build_tile_program(4, 32, 0, 512, 2))


def _rules(program) -> set[str]:
    return verify_program(program).rules_fired()


def _instrs(program):
    for block in program.blocks:
        for instr in block.instructions:
            yield block, instr


# -- baseline: the unmutated pipelines verify clean ----------------------


def test_stream_pipeline_clean(stream_pipeline):
    report = verify_program(stream_pipeline)
    assert report.clean, report.to_text()


def test_tile_pipeline_clean(tile_pipeline):
    report = verify_program(tile_pipeline)
    assert report.clean, report.to_text()


# -- queue-protocol pass -------------------------------------------------


def test_dropped_pop_fires_q003(stream_pipeline):
    # Replace the consumer's only POP operand with an immediate: Q0 is
    # now pushed but never popped.
    for _block, instr in _instrs(stream_pipeline):
        pops = instr.queue_pops()
        if pops:
            instr.srcs = [
                Immediate(0) if s in pops else s for s in instr.srcs
            ]
            break
    else:
        pytest.fail("no pop site found")
    report = verify_program(stream_pipeline)
    assert "WASP-Q003" in report.rules_fired()
    assert report.errors


def test_duplicated_push_fires_q004(stream_pipeline):
    # Clone the producer's push into its block: two pushes per
    # iteration against one pop.
    for block, instr in _instrs(stream_pipeline):
        if isinstance(instr.dst, QueueRef):
            block.instructions.insert(
                block.instructions.index(instr), instr.clone()
            )
            break
    else:
        pytest.fail("no push site found")
    assert "WASP-Q004" in _rules(stream_pipeline)


def test_push_count_divergence_across_paths_fires_q004(stream_pipeline):
    # Give the producer loop a second path that skips the push: the
    # entry count now depends on which path an iteration takes.
    view = build_view(stream_pipeline)
    sites = collect_sites(view)
    push = next(s for s in sites.queue_sites if s.is_push)
    loop = section_loops(view, push.stage)[0]
    body = stream_pipeline.find_block(push.block)
    skip_label = f"s{push.stage}_skip_push"
    guard = body.instructions[0].defined_predicates() or None
    # Branch around the push under the stage's loop predicate (any
    # predicate defined in-stage works for a static check).
    for _block, instr in _instrs(stream_pipeline):
        preds = instr.defined_predicates()
        if preds and stage_of_label(_block.label) == push.stage:
            guard = preds[0]
            break
    assert guard is not None
    idx = body.instructions.index(push.instr)
    tail = body.instructions[idx:]
    body.instructions = body.instructions[:idx]
    body.instructions.append(
        Instruction(Opcode.BRA, target=skip_label, guard=guard)
    )
    # Rebuild layout: push block, then the skip join holding the tail.
    pos = stream_pipeline.blocks.index(body)
    push_blk = stream_pipeline.blocks
    from repro.isa.program import BasicBlock

    carry = BasicBlock(f"s{push.stage}_do_push", [tail[0]])
    join = BasicBlock(skip_label, tail[1:])
    push_blk.insert(pos + 1, join)
    push_blk.insert(pos + 1, carry)
    assert "WASP-Q004" in _rules(stream_pipeline), (
        verify_program(stream_pipeline).to_text()
    )
    del loop  # loop shape asserted implicitly by the rule firing


def test_queue_without_spec_fires_q007(stream_pipeline):
    stream_pipeline.tb_spec = None
    assert "WASP-Q007" in _rules(stream_pipeline)


def test_undeclared_queue_fires_q005(stream_pipeline):
    stream_pipeline.tb_spec.queues = []
    assert "WASP-Q005" in _rules(stream_pipeline)


def test_single_iteration_overflow_fires_q006():
    program = _compile(build_stream_program(128, 0, 512), queue_size=32)
    view = build_view(program)
    sites = collect_sites(view)
    push = next(s for s in sites.queue_sites if s.is_push)
    block = program.find_block(push.block)
    idx = block.instructions.index(push.instr)
    for _ in range(40):  # 41 pushes/iteration > 32-entry queue
        block.instructions.insert(idx, push.instr.clone())
    report = verify_program(program)
    assert "WASP-Q006" in report.rules_fired()
    # Credit pressure alone stalls rather than deadlocks: a warning.
    assert any(
        d.rule == "WASP-Q006" and d.severity is Severity.WARNING
        for d in report
    )


# -- deadlock pass -------------------------------------------------------


def test_arrive_flipped_to_wait_fires_d002(tile_pipeline):
    # Turn the consumer's credit-return arrive into a wait: the
    # producer's BAR.WAIT on that barrier can now never be satisfied.
    for _block, instr in _instrs(tile_pipeline):
        if (instr.opcode is Opcode.BAR_ARRIVE
                and instr.barrier_id == "tile0_B_empty"):
            instr.opcode = Opcode.BAR_WAIT
            break
    else:
        pytest.fail("no BAR.ARRIVE on tile0_B_empty found")
    report = verify_program(tile_pipeline)
    assert "WASP-D002" in report.rules_fired()
    assert any(
        d.rule == "WASP-D002" and d.severity is Severity.ERROR
        for d in report
    )


def test_deleted_wait_fires_d003(tile_pipeline):
    # Remove every wait on one barrier: its arrivals become lost
    # signals (warning, not deadlock).
    for block in tile_pipeline.blocks:
        block.instructions = [
            i for i in block.instructions
            if not (i.opcode is Opcode.BAR_WAIT
                    and i.barrier_id == "tile0_A_filled")
        ]
    assert "WASP-D003" in _rules(tile_pipeline)


def test_undeclared_barrier_fires_d005(tile_pipeline):
    del tile_pipeline.tb_spec.barrier_expected["tile0_A_filled"]
    assert "WASP-D005" in _rules(tile_pipeline)


def test_wrong_expected_count_fires_d004(tile_pipeline):
    tile_pipeline.tb_spec.barrier_expected["tile0_A_filled"] = 7
    assert "WASP-D004" in _rules(tile_pipeline)


def test_queue_cycle_fires_d001(stream_pipeline):
    from repro.core.specs import NamedQueueSpec

    spec = stream_pipeline.tb_spec
    spec.queues = list(spec.queues) + [
        NamedQueueSpec(queue_id=1, src_stage=1, dst_stage=0, size=4)
    ]
    assert "WASP-D001" in _rules(stream_pipeline)


def test_partial_tb_sync_fires_d006(tile_pipeline):
    # A full thread-block sync appearing in only one stage's section
    # hangs: the hardware counts every warp of the block.
    entry = next(
        b for b in tile_pipeline.blocks if b.label.startswith("s1_")
    )
    entry.instructions.insert(
        0, Instruction(Opcode.BAR_SYNC, barrier_id="tb")
    )
    report = verify_program(tile_pipeline)
    assert "WASP-D006" in report.rules_fired()
    assert report.errors


# -- SMEM race pass ------------------------------------------------------


def test_unordered_smem_sharing_fires_s001(tile_pipeline):
    # Strip every arrive/wait barrier: stage 0 still writes the tile
    # buffer that stage 1 reads, now with no ordering between them.
    for block in tile_pipeline.blocks:
        block.instructions = [
            i for i in block.instructions
            if i.opcode not in (Opcode.BAR_ARRIVE, Opcode.BAR_WAIT)
        ]
    report = verify_program(tile_pipeline)
    assert "WASP-S001" in report.rules_fired()
    assert report.errors


def test_aliased_tiles_without_barrier_fires_s001():
    # Hand-built combined program: both stages touch the same SMEM
    # tile with no barrier at all (aliasing double-buffer copies).
    from repro.core.specs import ThreadBlockSpec
    from repro.isa import SpecialReg

    b = ProgramBuilder("aliased")
    b.alloc_smem("tile", 32)
    pred = b.isetp("eq", b.special(SpecialReg.PIPE_STAGE_ID), 1)
    b.bra("s1_read", guard=pred)
    b.label("s0_write")
    b.sts(Immediate(0), b.mov(1.0), buffer="tile")
    b.exit()
    b.label("s1_read")
    b.lds(Immediate(0), buffer="tile")
    b.exit()
    program = b.finish()
    program.tb_spec = ThreadBlockSpec(
        num_stages=2,
        warps_per_stage=[[0], [1]],
        stage_registers=[4, 4],
        queues=[],
        smem_words=32,
    )
    # Make both sections reachable for the race pass (jump table).
    report = verify_program(program)
    assert "WASP-S001" in report.rules_fired()


def test_out_of_bounds_smem_access_fires_s002(tile_pipeline):
    for block in tile_pipeline.blocks:
        if not block.label.startswith("s1_"):
            continue
        for instr in block.instructions:
            if instr.opcode is Opcode.LDS:
                instr.srcs[0] = Immediate(
                    tile_pipeline.smem_words + 100
                )
                assert "WASP-S002" in _rules(tile_pipeline)
                return
    pytest.fail("no LDS found in stage 1")


# -- resource pass -------------------------------------------------------


def test_oversubscribed_stage_budget_fires_r002(tile_pipeline):
    tile_pipeline.tb_spec.stage_registers[1] = 2
    report = verify_program(tile_pipeline)
    assert "WASP-R002" in report.rules_fired()
    assert report.errors


def test_register_file_overflow_fires_r001(tile_pipeline):
    tile_pipeline.tb_spec.stage_registers = [40000, 40000]
    tile_pipeline.num_registers = 40000
    assert "WASP-R001" in _rules(tile_pipeline)


def test_use_before_def_fires_r003(tile_pipeline):
    entry = next(
        b for b in tile_pipeline.blocks if b.label == "s1_entry"
    )
    entry.instructions.insert(0, Instruction(
        Opcode.FADD, dst=Register(3),
        srcs=[Register(60), Register(61)],
    ))
    tile_pipeline.tb_spec.stage_registers[1] = 64
    report = verify_program(tile_pipeline)
    assert "WASP-R003" in report.rules_fired()


def test_smem_over_capacity_fires_r004(tile_pipeline):
    from repro.analysis import VerifyLimits

    report = verify_program(
        tile_pipeline, VerifyLimits(smem_capacity_words=16)
    )
    assert "WASP-R004" in report.rules_fired()


def test_spec_program_disagreement_fires_r006(tile_pipeline):
    tile_pipeline.tb_spec.smem_words = 999
    assert "WASP-R006" in _rules(tile_pipeline)


def test_cross_stage_fallthrough_fires_c007(tile_pipeline):
    # Delete stage 0's terminating EXIT: control bleeds into stage 1.
    epilog = next(
        b for b in tile_pipeline.blocks if b.label == "s0_epilog"
    )
    epilog.instructions = []
    assert "WASP-C007" in _rules(tile_pipeline)


def test_unreachable_block_fires_c006(tile_pipeline):
    from repro.isa.program import BasicBlock

    tile_pipeline.blocks.append(BasicBlock(
        "s1_orphan", [Instruction(Opcode.EXIT)]
    ))
    assert "WASP-C006" in _rules(tile_pipeline)


# -- structural diagnostics through Program.validate ---------------------


def test_validate_carries_structural_diagnostics():
    b = ProgramBuilder("bad")
    b.label("entry")
    b.bra("nowhere")
    program = b.finish(validate=False)
    with pytest.raises(ValidationError) as excinfo:
        program.validate()
    rules = {d.rule for d in excinfo.value.diagnostics}
    assert "WASP-C004" in rules


def test_empty_program_is_c001():
    from repro.isa.program import Program

    assert [d.rule for d in Program("empty").structural_diagnostics()] \
        == ["WASP-C001"]


# -- compiler integration ------------------------------------------------


def test_compile_populates_diagnostics_and_verifies_by_default():
    result = WaspCompiler().compile(
        build_stream_program(128, 0, 512), num_warps=2
    )
    assert result.specialized
    assert isinstance(result.diagnostics, list)  # ran, found nothing


def test_verify_or_raise_wraps_errors(stream_pipeline):
    stream_pipeline.tb_spec.queues = []
    with pytest.raises(VerificationError) as excinfo:
        verify_or_raise(stream_pipeline)
    assert isinstance(excinfo.value, CompilerError)
    assert any(
        d.rule == "WASP-Q005" for d in excinfo.value.diagnostics
    )


# -- registry gate -------------------------------------------------------


def test_all_registry_workloads_lint_clean():
    result = lint_benchmarks(scale=0.25)
    assert result.kernels, "registry produced no kernels"
    assert result.num_errors == 0, result.to_text()
    assert result.num_warnings == 0, result.to_text()


def test_lint_kernel_returns_report():
    result, report = lint_kernel(build_stream_program(128, 0, 512), 2)
    assert result.specialized
    assert report.clean


def test_cli_lint_subcommand(tmp_path, capsys):
    import json

    from repro.cli import main

    out = tmp_path / "lint.json"
    code = main(["lint", "pointnet", "--json-out", str(out)])
    assert code == 0
    assert "verifier: clean" in capsys.readouterr().out
    doc = json.loads(out.read_text())
    assert doc["schema"] == "repro-lint-report-v1"
    assert doc["num_errors"] == 0
    assert doc["kernels"]


def test_cli_lint_rejects_unknown_benchmark():
    from repro.cli import main

    with pytest.raises(SystemExit):
        main(["lint", "no_such_benchmark"])
