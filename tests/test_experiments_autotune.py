"""Per-kernel RFQ auto-tuning extension."""


from repro.experiments import autotune


def test_autotune_never_below_fixed():
    result = autotune.run(
        scale=0.25, benchmarks=["pointnet", "spmv2_web"], sizes=(8, 32)
    )
    assert result.rows
    for row in result.rows:
        assert row.tuned_speedup >= row.fixed_speedup - 1e-9
        assert row.best_size in (8, 32)
    assert result.mean_gain() >= 1.0 - 1e-9


def test_autotune_report_renders():
    result = autotune.run(scale=0.25, benchmarks=["pointnet"], sizes=(8, 32))
    text = result.to_text()
    assert "auto-tuning" in text
    assert "MEAN GAIN" in text
